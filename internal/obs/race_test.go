package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestTracerConcurrentHammer drives the tracer from 8 worker goroutines
// (plus concurrent readers) the way the parallel engine does; run under
// -race in CI it proves the sharded event store and atomic totals are
// data-race free.
func TestTracerConcurrentHammer(t *testing.T) {
	tr := NewTracer()
	reg := NewRegistry()
	c := reg.NewCounter("hammer_total", "")
	g := reg.NewGauge("hammer_depth", "")
	h := reg.NewHistogram("hammer_lat", "", []float64{1, 10})
	const workers, iters = 8, 500

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				step := tr.Begin(1, w, PhaseStep, "k")
				inner := tr.Begin(1, w, PhaseTransfer+Phase(i%6), "k")
				inner.EndDetail(fmt.Sprintf("i=%d", i))
				step.End()
				c.Inc()
				g.SetMax(float64(i))
				h.Observe(float64(i % 20))
				// Register fresh series while renders are in flight: the
				// engine does exactly this (publishMetrics after each job,
				// live-gauge registration) against a concurrent /metrics
				// scrape, so WritePrometheus must never iterate a family map
				// another goroutine is inserting into.
				reg.NewCounterVec("hammer_dyn_total", "",
					Labels("w", fmt.Sprint(w), "i", fmt.Sprint(i%17))).Inc()
				reg.GaugeFuncVec("hammer_dyn_fn", "",
					Labels("w", fmt.Sprint(w), "i", fmt.Sprint(i%17)),
					func() float64 { return float64(i) })
			}
		}(w)
	}
	// Concurrent readers: totals, events and metrics renders hammered for
	// the writers' whole lifetime, so every render overlaps live series
	// registration (WritePrometheus vs. NewCounterVec on one family map).
	writersDone := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			_ = tr.Totals()
			_ = tr.EventCount()
			var sb nopWriter
			_ = reg.WritePrometheus(&sb)
			select {
			case <-writersDone:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(writersDone)
	<-done

	if n := tr.EventCount(); n != workers*iters*2 {
		t.Errorf("events = %d, want %d", n, workers*iters*2)
	}
	if got := tr.Totals()["step"]; got.Count != workers*iters {
		t.Errorf("step count = %d", got.Count)
	}
	if c.Value() != workers*iters {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != float64(iters-1) {
		t.Errorf("gauge max = %v", g.Value())
	}
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d", h.Count())
	}
	// The merged snapshot must be well-formed (no partial overlaps within
	// a lane) despite the concurrency.
	if probs := Check(tr.Events(), 0); len(probs) != 0 {
		t.Errorf("hammered trace malformed: %v", probs[:min(3, len(probs))])
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
