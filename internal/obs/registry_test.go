package obs

import (
	"strings"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.NewCounter("x", "")
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil-registry counter counted")
	}
	g := r.NewGauge("y", "")
	g.Set(3)
	g.SetMax(5)
	if g.Value() != 0 {
		t.Error("nil-registry gauge stored")
	}
	r.GaugeFunc("z", "", func() float64 { return 1 })
	h := r.NewHistogram("h", "", []float64{1})
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil-registry histogram observed")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Errorf("nil registry rendered %q, %v", sb.String(), err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("psdf_steps_total", "engine steps")
	c.Add(5)
	c.Inc()
	c.Add(-3) // ignored
	if c.Value() != 6 {
		t.Errorf("counter = %d", c.Value())
	}
	// Re-registering the same series returns the same underlying value.
	if again := r.NewCounter("psdf_steps_total", "engine steps"); again.Value() != 6 {
		t.Errorf("re-registered counter = %d", again.Value())
	}
	g := r.NewGauge("psdf_queue_depth", "")
	g.Set(4)
	g.SetMax(2) // lower: ignored
	g.SetMax(9)
	if g.Value() != 9 {
		t.Errorf("gauge = %v", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("m", "")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.NewGauge("m", "")
}

func TestLabelsDeterministic(t *testing.T) {
	a := Labels("b", "2", "a", "1")
	if a != `{a="1",b="2"}` {
		t.Errorf("labels = %s", a)
	}
	if Labels() != "" {
		t.Error("empty labels nonempty")
	}
	if got := Labels("k", `va"l`+"\n"); !strings.Contains(got, `\"`) || !strings.Contains(got, `\n`) {
		t.Errorf("unescaped label: %s", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %v", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="10"} 3`,
		`lat_bucket{le="100"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_sum 556.5`,
		`lat_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram render missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeAndCounterFuncs(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.GaugeFunc("live", "current depth", func() float64 { return v })
	r.CounterFunc("seen_total", "", func() float64 { return 42 })
	r.GaugeFuncVec("shard_depth", "per-shard", Labels("shard", "3"), func() float64 { return 2 })
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"live 7", "seen_total 42", `shard_depth{shard="3"} 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	v = 8
	sb.Reset()
	_ = r.WritePrometheus(&sb)
	if !strings.Contains(sb.String(), "live 8") {
		t.Error("GaugeFunc not re-evaluated at render")
	}
}
