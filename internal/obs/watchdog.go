package obs

// The stall watchdog arms a no-progress deadline over a running fixpoint:
// it samples a monotone progress counter and fires (once) when the counter
// stops moving for longer than the timeout. Firing is an observation, not
// an abort — the engine keeps running; the callback's job is to log and to
// dump the flight recorder while the stalled state is still live.

import (
	"sync"
	"time"
)

// StallReport describes a watchdog firing.
type StallReport struct {
	// Progress is the stuck value of the progress counter.
	Progress int64
	// Stalled is how long the counter had not moved when the watchdog
	// fired (>= the configured timeout).
	Stalled time.Duration
	// At is the firing time (the watchdog's clock).
	At time.Time
}

// Watchdog watches a progress counter and invokes onStall exactly once if
// the counter ever stands still for at least timeout. The zero source of
// time is replaceable (SetClock) so tests drive the deadline
// deterministically via Check; production runs use Start's polling
// goroutine. A nil *Watchdog is valid and inert.
type Watchdog struct {
	timeout  time.Duration
	progress func() int64
	onStall  func(StallReport)
	clock    func() time.Time

	mu         sync.Mutex
	armed      bool
	last       int64
	lastChange time.Time
	fired      bool

	firedCh  chan struct{}
	stopCh   chan struct{}
	stopOnce sync.Once
	pollWG   sync.WaitGroup
}

// NewWatchdog builds a watchdog. progress must be safe to call from
// another goroutine (atomics); onStall may be nil.
func NewWatchdog(timeout time.Duration, progress func() int64, onStall func(StallReport)) *Watchdog {
	return &Watchdog{
		timeout:  timeout,
		progress: progress,
		onStall:  onStall,
		clock:    time.Now,
		firedCh:  make(chan struct{}),
		stopCh:   make(chan struct{}),
	}
}

// SetClock replaces the time source. Test hook; call before the first
// Check or Start.
func (w *Watchdog) SetClock(now func() time.Time) { w.clock = now }

// Check samples the progress counter once: it re-arms the deadline when
// the counter moved, and fires when the counter has been still for at
// least the timeout. Returns true exactly once — on the call that fires.
// Nil-safe.
func (w *Watchdog) Check() bool {
	if w == nil {
		return false
	}
	w.mu.Lock()
	if w.fired {
		w.mu.Unlock()
		return false
	}
	now := w.clock()
	cur := w.progress()
	if !w.armed || cur != w.last {
		w.armed = true
		w.last = cur
		w.lastChange = now
		w.mu.Unlock()
		return false
	}
	stalled := now.Sub(w.lastChange)
	if stalled < w.timeout {
		w.mu.Unlock()
		return false
	}
	w.fired = true
	close(w.firedCh)
	w.mu.Unlock()
	if w.onStall != nil {
		w.onStall(StallReport{Progress: cur, Stalled: stalled, At: now})
	}
	return true
}

// Start spawns the polling goroutine. poll <= 0 selects timeout/4 clamped
// to [1ms, 1s]. The goroutine exits after firing or Stop.
func (w *Watchdog) Start(poll time.Duration) {
	if w == nil {
		return
	}
	if poll <= 0 {
		poll = w.timeout / 4
		if poll < time.Millisecond {
			poll = time.Millisecond
		}
		if poll > time.Second {
			poll = time.Second
		}
	}
	w.pollWG.Add(1)
	go func() {
		defer w.pollWG.Done()
		t := time.NewTicker(poll)
		defer t.Stop()
		for {
			select {
			case <-w.stopCh:
				return
			case <-t.C:
				if w.Check() {
					return
				}
			}
		}
	}()
}

// Stop disarms the watchdog and waits for the polling goroutine (if any)
// to exit. Idempotent; nil-safe. A watchdog that already fired stays
// fired.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stopCh) })
	w.pollWG.Wait()
}

// Fired reports whether the watchdog has fired. Nil-safe.
func (w *Watchdog) Fired() bool {
	if w == nil {
		return false
	}
	select {
	case <-w.firedCh:
		return true
	default:
		return false
	}
}

// FiredChan is closed when the watchdog fires; callers can select on it to
// hold a run open until the stall path executes (ForceStall smoke tests).
func (w *Watchdog) FiredChan() <-chan struct{} { return w.firedCh }
