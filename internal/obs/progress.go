package obs

// Live analysis progress. Each running analysis registers a sampling
// closure with a ProgressTracker; the HTTP layer (and anything else that
// wants a heartbeat) asks the tracker for a Snapshot, which samples every
// live analysis at that instant and merges in the final snapshots of
// finished ones. The engines keep the sampled state in atomics or behind
// short-lived shard locks, so sampling never blocks the fixpoint for more
// than a queue-size read.

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// Progress is one analysis's point-in-time progress snapshot: the /statusz
// JSON schema (DESIGN.md §14).
type Progress struct {
	// Job is the analysis's TracePID; Name its workload label.
	Job  int    `json:"job"`
	Name string `json:"name,omitempty"`
	// Workers is the configured worker count (1 = sequential engine).
	Workers int `json:"workers,omitempty"`
	// Done marks a final snapshot: the analysis has converged and the
	// counters are its end-of-run totals.
	Done bool `json:"done"`
	// Steps counts propagate invocations (configurations visited,
	// counting revisits); Configs counts distinct configuration shapes.
	Steps   int64 `json:"steps"`
	Configs int64 `json:"configs"`
	// Pending counts configurations queued or running; Queued counts
	// configurations sitting in run queues right now. ShardQueued is the
	// per-shard queue breakdown (parallel engine only).
	Pending     int64 `json:"pending"`
	Queued      int64 `json:"queued"`
	ShardQueued []int `json:"shard_queued,omitempty"`
	// Ladder counters: joins (graph joins), widenings (state-changing
	// revisions past the join rung) and give-ups (entries forced to ⊤).
	Joins     int64 `json:"joins"`
	Widenings int64 `json:"widenings"`
	GiveUps   int64 `json:"give_ups"`
	// Match-memo decision cache.
	MemoHits    int64   `json:"memo_hits"`
	MemoMisses  int64   `json:"memo_misses"`
	MemoHitRate float64 `json:"memo_hit_rate"`
	// Prover lane: memo-missing HSM searches and their cumulative wall
	// time (populated when the client matcher exposes prover counters;
	// zero otherwise).
	ProverSearches int64 `json:"prover_searches"`
	ProverNs       int64 `json:"prover_ns"`
	// Scheduler behavior: cross-shard steals and coalesced revisits.
	Steals    int64 `json:"sched_steals"`
	Coalesced int64 `json:"sched_coalesced"`
	// ElapsedNs is time since the analysis started (or its total wall
	// time once Done).
	ElapsedNs int64 `json:"elapsed_ns"`
}

// ProgressTracker multiplexes progress across concurrent analyses. All
// methods are nil-safe: a nil tracker registers nothing and samples empty.
type ProgressTracker struct {
	mu   sync.Mutex
	live map[int]func() Progress
	done map[int]Progress
}

// NewProgressTracker returns an empty tracker.
func NewProgressTracker() *ProgressTracker {
	return &ProgressTracker{live: map[int]func() Progress{}, done: map[int]Progress{}}
}

// Register installs the sampling closure for job. The closure must be safe
// to call from other goroutines until Finish(job) is called.
func (t *ProgressTracker) Register(job int, sample func() Progress) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.live[job] = sample
	delete(t.done, job)
	t.mu.Unlock()
}

// Finish replaces job's live sampler with its final snapshot.
func (t *ProgressTracker) Finish(job int, final Progress) {
	if t == nil {
		return
	}
	final.Done = true
	t.mu.Lock()
	delete(t.live, job)
	t.done[job] = final
	t.mu.Unlock()
}

// Snapshot samples every live analysis and merges the finished ones,
// sorted by job id. Nil-safe (returns nil).
func (t *ProgressTracker) Snapshot() []Progress {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Progress, 0, len(t.live)+len(t.done))
	for _, sample := range t.live {
		out = append(out, sample())
	}
	for _, p := range t.done {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Job < out[j].Job })
	return out
}

// Statusz is the /statusz response envelope.
type Statusz struct {
	NowUnixNs int64      `json:"now_unix_ns"`
	Jobs      []Progress `json:"jobs"`
}

// WriteStatusz renders the tracker's current snapshot as /statusz JSON.
func (t *ProgressTracker) WriteStatusz(w io.Writer) error {
	s := Statusz{NowUnixNs: time.Now().UnixNano(), Jobs: t.Snapshot()}
	if s.Jobs == nil {
		s.Jobs = []Progress{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
