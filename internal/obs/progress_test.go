package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestProgressTrackerLifecycle(t *testing.T) {
	tr := NewProgressTracker()
	var steps int64
	tr.Register(2, func() Progress { return Progress{Job: 2, Name: "b", Steps: steps} })
	tr.Register(1, func() Progress { return Progress{Job: 1, Name: "a", Steps: 7} })

	steps = 5
	snap := tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d jobs, want 2", len(snap))
	}
	if snap[0].Job != 1 || snap[1].Job != 2 {
		t.Fatalf("snapshot not sorted by job: %+v", snap)
	}
	if snap[1].Steps != 5 || snap[1].Done {
		t.Fatalf("live sample wrong: %+v", snap[1])
	}

	tr.Finish(2, Progress{Job: 2, Name: "b", Steps: 9})
	snap = tr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d jobs after finish, want 2", len(snap))
	}
	if !snap[1].Done || snap[1].Steps != 9 {
		t.Fatalf("final snapshot wrong: %+v", snap[1])
	}
}

func TestProgressTrackerNilInert(t *testing.T) {
	var tr *ProgressTracker
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Register(1, nil)
		tr.Finish(1, Progress{})
	})
	if allocs != 0 {
		t.Fatalf("nil tracker register/finish allocates %.1f/op, want 0", allocs)
	}
	if tr.Snapshot() != nil {
		t.Fatal("nil tracker snapshot not nil")
	}
}

func TestStatuszEndpoint(t *testing.T) {
	tr := NewProgressTracker()
	tr.Register(1, func() Progress { return Progress{Job: 1, Name: "w", Steps: 3, Workers: 8} })
	mux := NewHTTPMux(NewRegistry(), tr, NewFlightRecorder(16), nil)

	req := httptest.NewRequest("GET", "/statusz", nil)
	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, req)
	if rw.Code != 200 {
		t.Fatalf("/statusz status %d", rw.Code)
	}
	var s Statusz
	if err := json.Unmarshal(rw.Body.Bytes(), &s); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, rw.Body.String())
	}
	if len(s.Jobs) != 1 || s.Jobs[0].Steps != 3 || s.Jobs[0].Workers != 8 {
		t.Fatalf("statusz payload wrong: %+v", s)
	}
	if s.NowUnixNs == 0 {
		t.Fatal("statusz missing timestamp")
	}
}

func TestStatuszStreamSSE(t *testing.T) {
	tr := NewProgressTracker()
	tr.Register(4, func() Progress { return Progress{Job: 4, Steps: 11} })
	mux := NewHTTPMux(nil, tr, nil, nil)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/statusz/stream?interval_ms=50", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	for sc.Scan() && events < 2 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var s Statusz
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &s); err != nil {
			t.Fatalf("SSE event not JSON: %v\n%s", err, line)
		}
		if len(s.Jobs) != 1 || s.Jobs[0].Steps != 11 {
			t.Fatalf("SSE payload wrong: %+v", s)
		}
		events++
	}
	if events < 2 {
		t.Fatalf("read %d SSE events, want >= 2 (scan err %v)", events, sc.Err())
	}
}

func TestFlightzAndQuit(t *testing.T) {
	rec := NewFlightRecorder(16)
	rec.Record("step", 1, 1, "k", "")
	quit := make(chan struct{})
	mux := NewHTTPMux(nil, nil, rec, func() { close(quit) })

	rw := httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/flightz", nil))
	if rw.Code != 200 || !bytes.Contains(rw.Body.Bytes(), []byte(`"kind":"step"`)) {
		t.Fatalf("/flightz status %d body %s", rw.Code, rw.Body.String())
	}

	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/quitquitquit", nil))
	if rw.Code != 405 {
		t.Fatalf("GET /quitquitquit status %d, want 405", rw.Code)
	}
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("POST", "/quitquitquit", nil))
	if rw.Code != 200 {
		t.Fatalf("POST /quitquitquit status %d", rw.Code)
	}
	select {
	case <-quit:
	default:
		t.Fatal("quit callback not invoked")
	}

	// Statusz without a tracker 404s rather than panicking.
	rw = httptest.NewRecorder()
	mux.ServeHTTP(rw, httptest.NewRequest("GET", "/statusz", nil))
	if rw.Code != 404 {
		t.Fatalf("/statusz without tracker: status %d, want 404", rw.Code)
	}
}
