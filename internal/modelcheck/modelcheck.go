// Package modelcheck implements the explicit-state baseline from the
// paper's related work (MPI-SPIN / Pervez et al, Section II): the program's
// communication behavior is established exactly, but only for one concrete
// process count at a time, by exhaustively executing it.
//
// Because the execution model is interleaving-oblivious (the paper's
// appendix proves every interleaving yields the same send-receive matches),
// a single canonical schedule covers the entire interleaving space; the
// state count we report is the number of distinct global states visited
// along it, which grows with np — the scaling contrast with the
// np-independent pCFG analysis is experiment E8.
package modelcheck

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/sim"
)

// Result holds the exact topology for one process count.
type Result struct {
	NP int
	// Edges maps (send node, recv node) pairs to the concrete (sender,
	// receiver) rank pairs observed.
	Edges map[[2]int][][2]int
	// States is the number of global states visited (statements executed
	// plus deliveries) — the model-checking cost proxy.
	States int
	// Deadlocked reports whether the program gets stuck.
	Deadlocked bool
}

// Check executes the program for a fixed np and returns its exact
// communication structure.
func Check(g *cfg.Graph, np int, env map[string]int64) (*Result, error) {
	simRes, err := sim.Run(g, np, sim.Options{Env: env})
	if err != nil {
		return nil, fmt.Errorf("modelcheck: %w", err)
	}
	res := &Result{
		NP:         np,
		Edges:      map[[2]int][][2]int{},
		States:     simRes.Steps + len(simRes.Events),
		Deadlocked: simRes.Deadlocked,
	}
	for _, e := range simRes.Events {
		k := [2]int{e.SendNode, e.RecvNode}
		res.Edges[k] = append(res.Edges[k], [2]int{e.Sender, e.Receiver})
	}
	return res, nil
}

// EdgeCount returns the number of distinct (send node, recv node) edges.
func (r *Result) EdgeCount() int { return len(r.Edges) }

// MessageCount returns the total number of delivered messages.
func (r *Result) MessageCount() int {
	n := 0
	for _, pairs := range r.Edges {
		n += len(pairs)
	}
	return n
}
