package modelcheck

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cfg"
	"repro/internal/parser"
)

func TestExactEdgesForFanout(t *testing.T) {
	w := bench.Fanout()
	_, g := w.Parse()
	res, err := Check(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if res.EdgeCount() != 1 {
		t.Errorf("edges = %d, want 1", res.EdgeCount())
	}
	if res.MessageCount() != 4 {
		t.Errorf("messages = %d, want np-1 = 4", res.MessageCount())
	}
}

func TestStatesGrowWithNP(t *testing.T) {
	// The model-checking cost grows with np (the pCFG analysis does not) —
	// the Section II scaling claim.
	w := bench.Fig5ExchangeRoot()
	_, g := w.Parse()
	prev := 0
	for _, np := range []int{4, 8, 16, 32} {
		res, err := Check(g, np, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.States <= prev {
			t.Errorf("states(np=%d) = %d, not growing (prev %d)", np, res.States, prev)
		}
		prev = res.States
	}
}

func TestDeadlockReported(t *testing.T) {
	prog, _ := parser.Parse("t.mpl", `
assume np >= 2
if id == 0 then
  recv y <- 1
end`)
	g := cfg.Build(prog)
	res, err := Check(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Error("deadlock not reported")
	}
}

func TestEnvPropagated(t *testing.T) {
	w := bench.TransposeSquare()
	_, g := w.Parse()
	res, err := Check(g, 9, w.Env(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("transpose deadlocked")
	}
	if res.MessageCount() != 9 {
		t.Errorf("messages = %d, want 9", res.MessageCount())
	}
}
