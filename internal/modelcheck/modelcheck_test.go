package modelcheck

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cfg"
	"repro/internal/parser"
)

func TestExactEdgesForFanout(t *testing.T) {
	w := bench.Fanout()
	_, g := w.Parse()
	res, err := Check(g, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("deadlocked")
	}
	if res.EdgeCount() != 1 {
		t.Errorf("edges = %d, want 1", res.EdgeCount())
	}
	if res.MessageCount() != 4 {
		t.Errorf("messages = %d, want np-1 = 4", res.MessageCount())
	}
}

func TestStatesGrowWithNP(t *testing.T) {
	// The model-checking cost grows with np (the pCFG analysis does not) —
	// the Section II scaling claim.
	w := bench.Fig5ExchangeRoot()
	_, g := w.Parse()
	prev := 0
	for _, np := range []int{4, 8, 16, 32} {
		res, err := Check(g, np, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.States <= prev {
			t.Errorf("states(np=%d) = %d, not growing (prev %d)", np, res.States, prev)
		}
		prev = res.States
	}
}

func TestDeadlockReported(t *testing.T) {
	prog, _ := parser.Parse("t.mpl", `
assume np >= 2
if id == 0 then
  recv y <- 1
end`)
	g := cfg.Build(prog)
	res, err := Check(g, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Error("deadlock not reported")
	}
}

// TestPartialProgressBeforeDeadlock: the differ's triage compares edge and
// message counts even when the oracle deadlocks, so messages delivered
// before the program gets stuck must still be counted — and distinct
// (send, recv) node pairs must stay distinct edges.
func TestPartialProgressBeforeDeadlock(t *testing.T) {
	prog, _ := parser.Parse("t.mpl", `
assume np >= 2
if id == 0 then
  send 1 -> 1
  send 2 -> 1
  recv y <- 1
elif id == 1 then
  recv a <- 0
  recv b <- 0
  recv c <- 0
end`)
	g := cfg.Build(prog)
	res, err := Check(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deadlocked {
		t.Fatal("deadlock not reported")
	}
	// Two sends from distinct nodes land in distinct receives: 2 edges, 2
	// messages delivered before ranks 0 and 1 block forever.
	if res.EdgeCount() != 2 {
		t.Errorf("edges = %d, want 2", res.EdgeCount())
	}
	if res.MessageCount() != 2 {
		t.Errorf("messages = %d, want 2", res.MessageCount())
	}
}

// TestEdgeVsMessageCount: one static edge serving several rank pairs keeps
// EdgeCount at 1 while MessageCount sees every delivery — the distinction
// the differ's topology comparison is built on.
func TestEdgeVsMessageCount(t *testing.T) {
	prog, _ := parser.Parse("t.mpl", `
assume np >= 2
if id >= 1 then
  send id -> 0
else
  for i := 1 to np - 1 do
    recv v <- i
  end
end`)
	g := cfg.Build(prog)
	for _, np := range []int{2, 4, 6} {
		res, err := Check(g, np, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Deadlocked {
			t.Fatalf("np=%d: deadlocked", np)
		}
		if res.EdgeCount() != 1 {
			t.Errorf("np=%d: edges = %d, want 1", np, res.EdgeCount())
		}
		if res.MessageCount() != np-1 {
			t.Errorf("np=%d: messages = %d, want %d", np, res.MessageCount(), np-1)
		}
	}
}

func TestEnvPropagated(t *testing.T) {
	w := bench.TransposeSquare()
	_, g := w.Parse()
	res, err := Check(g, 9, w.Env(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Fatal("transpose deadlocked")
	}
	if res.MessageCount() != 9 {
		t.Errorf("messages = %d, want 9", res.MessageCount())
	}
}
