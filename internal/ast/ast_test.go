package ast_test

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/ast"
	"repro/internal/parser"
)

func exprOf(t *testing.T, src string) ast.Expr {
	t.Helper()
	prog, err := parser.Parse("t.mpl", "tmp := "+src)
	if err != nil {
		t.Fatal(err)
	}
	return prog.Stmts[0].(*ast.Assign).Rhs
}

func TestFreeVars(t *testing.T) {
	e := exprOf(t, "id + nrows * (x - 2) + id")
	vars := ast.FreeVars(e)
	var got []string
	for v := range vars {
		got = append(got, v)
	}
	sort.Strings(got)
	if !reflect.DeepEqual(got, []string{"id", "nrows", "x"}) {
		t.Errorf("FreeVars = %v", got)
	}
}

func TestUsesIdent(t *testing.T) {
	e := exprOf(t, "a + b * 3")
	if !ast.UsesIdent(e, "b") || ast.UsesIdent(e, "id") {
		t.Error("UsesIdent wrong")
	}
}

func TestWalkPruning(t *testing.T) {
	e := exprOf(t, "(a + b) * (c + d)")
	count := 0
	ast.Walk(e, func(x ast.Expr) bool {
		count++
		// Prune at the first binary child: skip its operands.
		_, isBin := x.(*ast.Binary)
		return !isBin || count == 1
	})
	// Root (*), then a+b (pruned) and c+d (pruned): 3 nodes visited.
	if count != 3 {
		t.Errorf("visited %d nodes, want 3", count)
	}
}

func TestWalkStmtsRecursesBodies(t *testing.T) {
	prog, err := parser.Parse("t.mpl", `
if id == 0 then
  while x < 3 do
    for i := 1 to 2 do
      send x -> 1
    end
  end
end`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	ast.WalkStmts(prog.Stmts, func(s ast.Stmt) bool {
		kinds = append(kinds, reflect.TypeOf(s).Elem().Name())
		return true
	})
	want := []string{"If", "While", "For", "Send"}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
}

func TestExprStringPrecedence(t *testing.T) {
	cases := map[string]string{
		"(a + b) * c": "(a + b) * c",
		"a + b * c":   "a + b * c",
		"a - (b - c)": "a - (b - c)",
		"-(a + b)":    "-(a + b)",
	}
	for src, want := range cases {
		if got := exprOf(t, src).String(); got != want {
			t.Errorf("String(%q) = %q, want %q", src, got, want)
		}
	}
}

func TestOpPredicates(t *testing.T) {
	if !ast.Add.IsArith() || ast.Add.IsComparison() || ast.Add.IsLogical() {
		t.Error("Add predicates wrong")
	}
	if !ast.Le.IsComparison() || ast.Le.IsArith() {
		t.Error("Le predicates wrong")
	}
	if !ast.LAnd.IsLogical() || ast.LAnd.IsComparison() {
		t.Error("LAnd predicates wrong")
	}
}

func TestFormatAllStatements(t *testing.T) {
	src := `var a, b
a := 1
if a == 1 then
  skip
else
  print a
end
while a < 3 do
  a := a + 1
end
for i := 1 to 2 do
  send a -> 0 : tag
end
recv b <- 0 : tag
sendrecv a -> 1, b <- 1
assume np >= 2
assert a > 0
`
	prog, err := parser.Parse("t.mpl", src)
	if err != nil {
		t.Fatal(err)
	}
	out := ast.Format(prog.Stmts)
	// Round-trip stability.
	prog2, err := parser.Parse("t2.mpl", out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	if out2 := ast.Format(prog2.Stmts); out2 != out {
		t.Errorf("format unstable:\n%s\nvs\n%s", out, out2)
	}
}
