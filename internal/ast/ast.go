// Package ast defines the abstract syntax tree for MPL, the small
// message-passing language over which the parallel dataflow analysis runs.
//
// MPL programs execute on an unbounded number of processes 0..np-1 (the
// paper's execution model, Section III). The builtins np and id are ordinary
// integer expressions; send/recv statements name their partner with an
// arithmetic expression over process-local state.
package ast

import (
	"fmt"
	"strings"

	"repro/internal/source"
)

// Node is the interface shared by all AST nodes.
type Node interface {
	Span() source.Span
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is an MPL expression.
type Expr interface {
	Node
	exprNode()
	// String renders the expression in MPL syntax.
	String() string
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	Sp    source.Span
}

// BoolLit is a boolean literal (true/false).
type BoolLit struct {
	Value bool
	Sp    source.Span
}

// Ident is a variable reference, including the builtins "np" and "id".
type Ident struct {
	Name string
	Sp   source.Span
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	Neg  UnaryOp = iota // -x
	LNot                // !x
)

func (op UnaryOp) String() string {
	switch op {
	case Neg:
		return "-"
	case LNot:
		return "!"
	}
	return fmt.Sprintf("unop(%d)", int(op))
}

// Unary is a unary operation.
type Unary struct {
	Op UnaryOp
	X  Expr
	Sp source.Span
}

// BinOp enumerates binary operators.
type BinOp int

// Binary operators.
const (
	Add BinOp = iota
	Sub
	Mul
	Div // integer division, truncating toward zero on nonnegative operands
	Mod
	Eq
	Neq
	Lt
	Le
	Gt
	Ge
	LAnd
	LOr
)

func (op BinOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Mod:
		return "%"
	case Eq:
		return "=="
	case Neq:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case LAnd:
		return "&&"
	case LOr:
		return "||"
	}
	return fmt.Sprintf("binop(%d)", int(op))
}

// IsComparison reports whether op yields a boolean from two integers.
func (op BinOp) IsComparison() bool { return op >= Eq && op <= Ge }

// IsArith reports whether op is an integer arithmetic operator.
func (op BinOp) IsArith() bool { return op >= Add && op <= Mod }

// IsLogical reports whether op combines two booleans.
func (op BinOp) IsLogical() bool { return op == LAnd || op == LOr }

// Binary is a binary operation.
type Binary struct {
	Op   BinOp
	L, R Expr
	Sp   source.Span
}

func (e *IntLit) Span() source.Span  { return e.Sp }
func (e *BoolLit) Span() source.Span { return e.Sp }
func (e *Ident) Span() source.Span   { return e.Sp }
func (e *Unary) Span() source.Span   { return e.Sp }
func (e *Binary) Span() source.Span  { return e.Sp }

func (*IntLit) exprNode()  {}
func (*BoolLit) exprNode() {}
func (*Ident) exprNode()   {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}

func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Value) }
func (e *BoolLit) String() string {
	if e.Value {
		return "true"
	}
	return "false"
}
func (e *Ident) String() string { return e.Name }
func (e *Unary) String() string { return e.Op.String() + parenIfBinary(e.X) }
func (e *Binary) String() string {
	return parenIfLower(e.L, e.Op) + " " + e.Op.String() + " " + parenIfLowerR(e.R, e.Op)
}

func precedence(op BinOp) int {
	switch op {
	case LOr:
		return 1
	case LAnd:
		return 2
	case Eq, Neq, Lt, Le, Gt, Ge:
		return 3
	case Add, Sub:
		return 4
	case Mul, Div, Mod:
		return 5
	}
	return 0
}

func parenIfBinary(e Expr) string {
	if b, ok := e.(*Binary); ok {
		return "(" + b.String() + ")"
	}
	return e.String()
}

func parenIfLower(e Expr, parent BinOp) string {
	if b, ok := e.(*Binary); ok && precedence(b.Op) < precedence(parent) {
		return "(" + b.String() + ")"
	}
	return e.String()
}

func parenIfLowerR(e Expr, parent BinOp) string {
	if b, ok := e.(*Binary); ok && precedence(b.Op) <= precedence(parent) {
		return "(" + b.String() + ")"
	}
	return e.String()
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is an MPL statement.
type Stmt interface {
	Node
	stmtNode()
}

// VarDecl declares one or more integer variables (initialized to 0).
type VarDecl struct {
	Names []string
	Sp    source.Span
}

// Assign is "x := e".
type Assign struct {
	Name string
	Rhs  Expr
	Sp   source.Span
}

// If is a conditional with an optional else branch. elif chains are
// desugared by the parser into nested If statements.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // nil when absent
	Sp   source.Span
}

// While is "while cond do body end".
type While struct {
	Cond Expr
	Body []Stmt
	Sp   source.Span
}

// For is "for i := lo to hi do body end"; inclusive bounds, step 1.
// The CFG builder desugars it to an initialization plus a While.
type For struct {
	Var    string
	Lo, Hi Expr
	Body   []Stmt
	Sp     source.Span
}

// Send is "send value -> dest [: tag]". The tag is an optional message-type
// label used by the type-mismatch detector.
type Send struct {
	Value Expr
	Dest  Expr
	Tag   string
	Sp    source.Span
}

// Recv is "recv x <- src [: tag]".
type Recv struct {
	Name string
	Src  Expr
	Tag  string
	Sp   source.Span
}

// SendRecv is the combined exchange "sendrecv value -> dest, x <- src",
// modeling MPI_Sendrecv: the send and receive proceed concurrently, so a
// set of processes can exchange data among themselves without deadlock.
type SendRecv struct {
	Value Expr
	Dest  Expr
	Name  string
	Src   Expr
	Tag   string
	Sp    source.Span
}

// Print is "print e".
type Print struct {
	Arg Expr
	Sp  source.Span
}

// Assume is "assume cond": a fact the analysis may rely on (e.g. np >= 2 or
// np == nrows * ncols). At runtime it is checked like an assert.
type Assume struct {
	Cond Expr
	Sp   source.Span
}

// Assert is "assert cond": checked at runtime; the analysis may verify it.
type Assert struct {
	Cond Expr
	Sp   source.Span
}

// Skip is the empty statement.
type Skip struct {
	Sp source.Span
}

func (s *VarDecl) Span() source.Span  { return s.Sp }
func (s *Assign) Span() source.Span   { return s.Sp }
func (s *If) Span() source.Span       { return s.Sp }
func (s *While) Span() source.Span    { return s.Sp }
func (s *For) Span() source.Span      { return s.Sp }
func (s *Send) Span() source.Span     { return s.Sp }
func (s *Recv) Span() source.Span     { return s.Sp }
func (s *SendRecv) Span() source.Span { return s.Sp }
func (s *Print) Span() source.Span    { return s.Sp }
func (s *Assume) Span() source.Span   { return s.Sp }
func (s *Assert) Span() source.Span   { return s.Sp }
func (s *Skip) Span() source.Span     { return s.Sp }

func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Send) stmtNode()     {}
func (*Recv) stmtNode()     {}
func (*SendRecv) stmtNode() {}
func (*Print) stmtNode()    {}
func (*Assume) stmtNode()   {}
func (*Assert) stmtNode()   {}
func (*Skip) stmtNode()     {}

// Program is a parsed MPL compilation unit.
type Program struct {
	Stmts []Stmt
	File  *source.File
}

// ---------------------------------------------------------------------------
// Utilities

// Walk applies fn to every expression in the subtree rooted at e, parents
// before children. If fn returns false, children of that node are skipped.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Unary:
		Walk(x.X, fn)
	case *Binary:
		Walk(x.L, fn)
		Walk(x.R, fn)
	}
}

// WalkStmts applies fn to every statement in the list, recursing into
// control-flow bodies. If fn returns false, the statement's children are
// skipped.
func WalkStmts(stmts []Stmt, fn func(Stmt) bool) {
	for _, s := range stmts {
		if !fn(s) {
			continue
		}
		switch x := s.(type) {
		case *If:
			WalkStmts(x.Then, fn)
			WalkStmts(x.Else, fn)
		case *While:
			WalkStmts(x.Body, fn)
		case *For:
			WalkStmts(x.Body, fn)
		}
	}
}

// FreeVars returns the set of identifier names appearing in e.
func FreeVars(e Expr) map[string]bool {
	vars := map[string]bool{}
	Walk(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok {
			vars[id.Name] = true
		}
		return true
	})
	return vars
}

// UsesIdent reports whether e references name.
func UsesIdent(e Expr, name string) bool {
	found := false
	Walk(e, func(x Expr) bool {
		if id, ok := x.(*Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// Format renders stmts as indented MPL source.
func Format(stmts []Stmt) string {
	var b strings.Builder
	formatStmts(&b, stmts, 0)
	return b.String()
}

func formatStmts(b *strings.Builder, stmts []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range stmts {
		switch x := s.(type) {
		case *VarDecl:
			fmt.Fprintf(b, "%svar %s\n", ind, strings.Join(x.Names, ", "))
		case *Assign:
			fmt.Fprintf(b, "%s%s := %s\n", ind, x.Name, x.Rhs)
		case *If:
			fmt.Fprintf(b, "%sif %s then\n", ind, x.Cond)
			formatStmts(b, x.Then, depth+1)
			if x.Else != nil {
				fmt.Fprintf(b, "%selse\n", ind)
				formatStmts(b, x.Else, depth+1)
			}
			fmt.Fprintf(b, "%send\n", ind)
		case *While:
			fmt.Fprintf(b, "%swhile %s do\n", ind, x.Cond)
			formatStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%send\n", ind)
		case *For:
			fmt.Fprintf(b, "%sfor %s := %s to %s do\n", ind, x.Var, x.Lo, x.Hi)
			formatStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%send\n", ind)
		case *Send:
			fmt.Fprintf(b, "%ssend %s -> %s%s\n", ind, x.Value, x.Dest, tagSuffix(x.Tag))
		case *Recv:
			fmt.Fprintf(b, "%srecv %s <- %s%s\n", ind, x.Name, x.Src, tagSuffix(x.Tag))
		case *SendRecv:
			fmt.Fprintf(b, "%ssendrecv %s -> %s, %s <- %s%s\n", ind, x.Value, x.Dest, x.Name, x.Src, tagSuffix(x.Tag))
		case *Print:
			fmt.Fprintf(b, "%sprint %s\n", ind, x.Arg)
		case *Assume:
			fmt.Fprintf(b, "%sassume %s\n", ind, x.Cond)
		case *Assert:
			fmt.Fprintf(b, "%sassert %s\n", ind, x.Cond)
		case *Skip:
			fmt.Fprintf(b, "%sskip\n", ind)
		}
	}
}

func tagSuffix(tag string) string {
	if tag == "" {
		return ""
	}
	return " : " + tag
}
