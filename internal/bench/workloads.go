// Package bench provides the MPL workloads used to regenerate the paper's
// evaluation: transcriptions of every figure's code sample plus generated
// families (fan-out broadcast, gathers, stencils, buggy variants) keyed by
// the experiment index in DESIGN.md.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/ast"
	"repro/internal/cfg"
	"repro/internal/parser"
)

// Workload is a named MPL program with the metadata the harness needs.
type Workload struct {
	Name string
	// Exp is the experiment id from DESIGN.md (e.g. "fig5").
	Exp string
	// Src is the MPL source.
	Src string
	// Env binds free symbols (beyond np) for concrete runs; NPFor derives
	// the process count from a scale parameter.
	Env func(scale int) map[string]int64
	// NPFor maps a scale parameter to the concrete process count.
	NPFor func(scale int) int
	// WantPattern is the expected topology classification (informational).
	WantPattern string
}

// Parse builds the workload's CFG, panicking on malformed embedded sources.
func (w *Workload) Parse() (*ast.Program, *cfg.Graph) {
	prog := parser.MustParse(w.Name+".mpl", w.Src)
	return prog, cfg.Build(prog)
}

func identityNP(scale int) int { return scale }

func noEnv(int) map[string]int64 { return nil }

// Fig2Exchange is the paper's Fig 2: processes 0 and 1 exchange a constant.
func Fig2Exchange() *Workload {
	return &Workload{
		Name: "fig2_exchange",
		Exp:  "fig2",
		Src: `
assume np >= 3
if id == 0 then
  x := 5
  send x -> 1
  recv y <- 1
  print y
elif id == 1 then
  recv y <- 0
  send y -> 0
  print y
end
`,
		Env:         noEnv,
		NPFor:       identityNP,
		WantPattern: "point-to-point",
	}
}

// Fig5ExchangeRoot is the mdcask pattern of Figs 1 and 5: the root
// exchanges a message with every other process.
func Fig5ExchangeRoot() *Workload {
	return &Workload{
		Name: "fig5_exchange_root",
		Exp:  "fig5",
		Src: `
assume np >= 4
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
    recv y <- i
  end
else
  recv y <- 0
  send y -> 0
end
`,
		Env:         noEnv,
		NPFor:       identityNP,
		WantPattern: "exchange-with-root",
	}
}

// Fanout is the Section IX fan-out broadcast: the root sends to everyone.
func Fanout() *Workload {
	return &Workload{
		Name: "fanout",
		Exp:  "profile",
		Src: `
assume np >= 3
if id == 0 then
  x := 42
  for i := 1 to np - 1 do
    send x -> i
  end
else
  recv y <- 0
  print y
end
`,
		Env:         noEnv,
		NPFor:       identityNP,
		WantPattern: "broadcast",
	}
}

// Gather is the dual fan-in: everyone sends to the root.
func Gather() *Workload {
	return &Workload{
		Name: "gather",
		Exp:  "precision",
		Src: `
assume np >= 3
if id == 0 then
  for i := 1 to np - 1 do
    recv y <- i
  end
else
  send x -> 0
end
`,
		Env:         noEnv,
		NPFor:       identityNP,
		WantPattern: "gather",
	}
}

// Fig7Shift is the 1-D nearest-neighbor shift of Figs 7 and 8.
func Fig7Shift() *Workload {
	return &Workload{
		Name: "fig7_shift",
		Exp:  "fig7",
		Src: `
assume np >= 4
if id == 0 then
  send x -> id + 1
elif id <= np - 2 then
  recv y <- id - 1
  send x -> id + 1
else
  recv y <- id - 1
end
`,
		Env:         noEnv,
		NPFor:       identityNP,
		WantPattern: "shift",
	}
}

// Stencil1D is the full d=1 nearest-neighbor exchange (both directions,
// 2d+1 = 3 roles, Section VIII-C).
func Stencil1D() *Workload {
	return &Workload{
		Name: "stencil1d",
		Exp:  "stencil",
		Src: `
assume np >= 4
if id == 0 then
  send x -> id + 1
  recv r <- id + 1
elif id <= np - 2 then
  recv y <- id - 1
  send x -> id + 1
  recv r <- id + 1
  send x -> id - 1
else
  recv y <- id - 1
  send x -> id - 1
end
`,
		Env:         noEnv,
		NPFor:       identityNP,
		WantPattern: "shift",
	}
}

// TransposeSquare is the NAS-CG square-grid transpose (Fig 6, first branch).
func TransposeSquare() *Workload {
	return &Workload{
		Name: "nascg_square",
		Exp:  "fig6",
		Src: `
assume nrows >= 1
assume np == nrows * nrows
send x -> (id % nrows) * nrows + id / nrows
recv y <- (id % nrows) * nrows + id / nrows
`,
		Env:         func(scale int) map[string]int64 { return map[string]int64{"nrows": int64(scale)} },
		NPFor:       func(scale int) int { return scale * scale },
		WantPattern: "permutation",
	}
}

// TransposeRect is the rectangular (ncols = 2*nrows) transpose of
// Section VIII-B.
func TransposeRect() *Workload {
	return &Workload{
		Name: "nascg_rect",
		Exp:  "fig6",
		Src: `
assume nrows >= 1
assume ncols == 2 * nrows
assume np == 2 * nrows * nrows
send x -> id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))
recv y <- id % 2 + 2 * nrows * (id / 2 % nrows) + 2 * (id / (2 * nrows))
`,
		Env: func(scale int) map[string]int64 {
			return map[string]int64{"nrows": int64(scale), "ncols": int64(2 * scale)}
		},
		NPFor:       func(scale int) int { return 2 * scale * scale },
		WantPattern: "permutation",
	}
}

// LeakyBroadcast is Fanout with a bug: the root also sends one message
// nobody receives (experiment E10's message leak).
func LeakyBroadcast() *Workload {
	return &Workload{
		Name: "leaky_broadcast",
		Exp:  "verify",
		Src: `
assume np >= 3
if id == 0 then
  for i := 1 to np - 1 do
    send x -> i
  end
  send x -> 1
else
  recv y <- 0
end
`,
		Env:         noEnv,
		NPFor:       identityNP,
		WantPattern: "broadcast",
	}
}

// TypeMismatch matches a "halo"-tagged send with a "data"-tagged receive.
func TypeMismatch() *Workload {
	return &Workload{
		Name: "type_mismatch",
		Exp:  "verify",
		Src: `
assume np >= 2
if id == 0 then
  send x -> 1 : halo
elif id == 1 then
  recv y <- 0 : data
end
`,
		Env:         noEnv,
		NPFor:       identityNP,
		WantPattern: "point-to-point",
	}
}

// StencilDim builds a d-dimensional torus-free stencil for a CONCRETE grid:
// roles are materialized per dimension as range comparisons over the
// linearized rank. Used by the model-checking and simulator experiments
// (the symbolic analysis covers the d=1 case, matching the paper's own
// demonstration).
func StencilDim(d int, side int) *Workload {
	if d < 1 {
		d = 1
	}
	np := 1
	for i := 0; i < d; i++ {
		np *= side
	}
	var b strings.Builder
	fmt.Fprintf(&b, "assume np >= %d\n", np)
	stride := 1
	for dim := 0; dim < d; dim++ {
		// Shift "up" along this dimension: senders are ranks whose
		// coordinate in this dimension is < side-1; receivers have coord
		// > 0. For the linearized layout, coord = (id / stride) %% side.
		fmt.Fprintf(&b, "if (id / %d) %% %d <= %d then\n", stride, side, side-2)
		fmt.Fprintf(&b, "  send x -> id + %d\n", stride)
		b.WriteString("end\n")
		fmt.Fprintf(&b, "if (id / %d) %% %d >= 1 then\n", stride, side)
		fmt.Fprintf(&b, "  recv y <- id - %d\n", stride)
		b.WriteString("end\n")
		stride *= side
	}
	return &Workload{
		Name:        fmt.Sprintf("stencil%dd", d),
		Exp:         "stencil",
		Src:         b.String(),
		Env:         noEnv,
		NPFor:       func(int) int { return np },
		WantPattern: "shift",
	}
}

// SendFirstShift is the aggregation-friendly variant of the 1-D shift:
// every sender posts its message before anyone receives. Under blocking
// sends the analysis must unroll-and-widen the pipeline; under the
// Section X non-blocking extension the aggregated send matches the whole
// receiver set in one step (experiment E12).
func SendFirstShift() *Workload {
	return &Workload{
		Name: "sendfirst_shift",
		Exp:  "aggregation",
		Src: `
assume np >= 3
if id <= np - 2 then
  send x -> id + 1
end
if id >= 1 then
  recv y <- id - 1
end
`,
		Env:         noEnv,
		NPFor:       identityNP,
		WantPattern: "shift",
	}
}

// Stencil2DFixedWidth is a two-dimensional column shift on an nx=4-wide
// grid with a symbolic number of rows: stride-4 communication that the
// unit-stride pipeline widening cannot summarize, but aggregated sends
// match set-level (experiment E12).
func Stencil2DFixedWidth() *Workload {
	return &Workload{
		Name: "stencil2d_fixed",
		Exp:  "aggregation",
		Src: `
assume nx == 4
assume np == 4 * ny
assume ny >= 3
assume np >= 12
if id <= np - 5 then
  send x -> id + 4
end
if id >= 4 then
  recv y <- id - 4
end
`,
		Env:         func(scale int) map[string]int64 { return map[string]int64{"nx": 4, "ny": int64(scale)} },
		NPFor:       func(scale int) int { return 4 * scale },
		WantPattern: "shift",
	}
}

// All returns the symbolic-analysis workloads in a stable order.
func All() []*Workload {
	return []*Workload{
		Fig2Exchange(),
		Fig5ExchangeRoot(),
		Fanout(),
		Gather(),
		Fig7Shift(),
		Stencil1D(),
		TransposeSquare(),
		TransposeRect(),
	}
}
