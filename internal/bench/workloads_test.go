package bench

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestAllWorkloadsParse(t *testing.T) {
	for _, w := range All() {
		prog, g := w.Parse()
		if prog == nil || g == nil {
			t.Errorf("%s: nil parse", w.Name)
		}
		if len(g.CommNodes()) == 0 {
			t.Errorf("%s: no communication nodes", w.Name)
		}
	}
}

func TestWorkloadsRunCleanly(t *testing.T) {
	for _, w := range All() {
		scale := 4
		if strings.HasPrefix(w.Name, "nascg") {
			scale = 3
		}
		np := w.NPFor(scale)
		_, g := w.Parse()
		res, err := sim.Run(g, np, sim.Options{Env: w.Env(scale)})
		if err != nil {
			t.Errorf("%s: %v", w.Name, err)
			continue
		}
		if res.Deadlocked {
			t.Errorf("%s: deadlocked at np=%d", w.Name, np)
		}
		if len(res.Failures) > 0 {
			t.Errorf("%s: assert failures %v", w.Name, res.Failures)
		}
		if len(res.Leaked) > 0 {
			t.Errorf("%s: leaked messages %v", w.Name, res.Leaked)
		}
	}
}

func TestBuggyWorkloads(t *testing.T) {
	_, g := LeakyBroadcast().Parse()
	res, err := sim.Run(g, 4, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaked) != 1 {
		t.Errorf("leaky broadcast leaked %d messages, want 1", len(res.Leaked))
	}
	_, g = TypeMismatch().Parse()
	res, err = sim.Run(g, 2, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Deadlocked {
		t.Error("type mismatch program should still deliver (tags are metadata)")
	}
}

func TestStencilDimMessageCounts(t *testing.T) {
	// A d-dimensional side^d stencil shifting up in every dimension has
	// d * side^(d-1) * (side-1) messages.
	for d := 1; d <= 3; d++ {
		side := 3
		w := StencilDim(d, side)
		np := w.NPFor(0)
		_, g := w.Parse()
		res, err := sim.Run(g, np, sim.Options{})
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if res.Deadlocked {
			t.Fatalf("d=%d: deadlocked", d)
		}
		want := d * pow(side, d-1) * (side - 1)
		if len(res.Events) != want {
			t.Errorf("d=%d: %d messages, want %d", d, len(res.Events), want)
		}
	}
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

func TestStencilRoleCount(t *testing.T) {
	// 2d+1 roles: count distinct (send?, recv?) participation patterns per
	// rank... the d-dimensional stencil partitions ranks into corner/edge/
	// interior classes; verify the d=1 case has exactly 3 roles.
	w := StencilDim(1, 5)
	_, g := w.Parse()
	res, err := sim.Run(g, 5, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	type role struct{ sends, recvs int }
	roles := map[int]*role{}
	for i := 0; i < 5; i++ {
		roles[i] = &role{}
	}
	for _, e := range res.Events {
		roles[e.Sender].sends++
		roles[e.Receiver].recvs++
	}
	distinct := map[role]bool{}
	for _, r := range roles {
		distinct[*r] = true
	}
	if len(distinct) != 3 {
		t.Errorf("d=1 stencil roles = %d, want 3 (2d+1)", len(distinct))
	}
}
