package benchhist

import (
	"math"
	"testing"
)

func TestMannWhitneyExactKnownValues(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
		want float64 // scipy.stats.mannwhitneyu(x, y, method="exact").pvalue
	}{
		{"disjoint 3v3", []float64{1, 2, 3}, []float64{4, 5, 6}, 0.1},
		{"disjoint 4v4", []float64{1, 2, 3, 4}, []float64{5, 6, 7, 8}, 2.0 / 70},
		{"disjoint 5v5", []float64{1, 2, 3, 4, 5}, []float64{6, 7, 8, 9, 10}, 2.0 / 252},
		{"interleaved", []float64{1, 3, 5, 7}, []float64{2, 4, 6, 8}, 48.0 / 70},
		{"one crossover 4v4", []float64{1, 2, 3, 5}, []float64{4, 6, 7, 8}, 4.0 / 70},
		{"asymmetric 3v5", []float64{1, 2, 3}, []float64{4, 5, 6, 7, 8}, 2.0 / 56},
	}
	for _, c := range cases {
		got := MannWhitneyU(c.x, c.y)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: p = %v, want %v", c.name, got, c.want)
		}
		// The test is symmetric in its arguments.
		if rev := MannWhitneyU(c.y, c.x); math.Abs(rev-got) > 1e-12 {
			t.Errorf("%s: asymmetric p: %v vs %v", c.name, got, rev)
		}
	}
}

func TestMannWhitneyDegenerate(t *testing.T) {
	if p := MannWhitneyU(nil, []float64{1, 2}); p != 1 {
		t.Errorf("empty sample: p = %v, want 1", p)
	}
	if p := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5, 5}); p != 1 {
		t.Errorf("all identical: p = %v, want 1", p)
	}
	// Identical distributions should never look significant.
	x := []float64{10, 11, 12, 13, 14}
	if p := MannWhitneyU(x, x); p < 0.5 {
		t.Errorf("self comparison: p = %v, want >= 0.5", p)
	}
}

func TestMannWhitneyTiesUseNormalApprox(t *testing.T) {
	// Heavily tied but clearly shifted samples: the tie-corrected normal
	// approximation must still flag the separation.
	x := []float64{1, 1, 1, 2, 2, 2, 2, 1, 1, 2}
	y := []float64{9, 9, 9, 8, 8, 8, 8, 9, 9, 8}
	p := MannWhitneyU(x, y)
	if p >= 0.01 {
		t.Errorf("shifted tied samples: p = %v, want < 0.01", p)
	}
	if p <= 0 || math.IsNaN(p) {
		t.Errorf("p out of range: %v", p)
	}
}

func TestMannWhitneyLargeSamplesNormalApprox(t *testing.T) {
	// n*m > 1024 forces the normal path even without ties.
	var x, y []float64
	for i := 0; i < 40; i++ {
		x = append(x, float64(i))
		y = append(y, float64(i)+0.5) // tiny shift, interleaved
	}
	p := MannWhitneyU(x, y)
	if p < 0.1 || p > 1 {
		t.Errorf("interleaved large samples: p = %v, want unremarkable", p)
	}
	for i := range y {
		y[i] += 1000
	}
	if p := MannWhitneyU(x, y); p >= 1e-6 {
		t.Errorf("separated large samples: p = %v, want tiny", p)
	}
}

func TestMinSamplesForAlpha(t *testing.T) {
	// 2/C(2k,k) <= 0.05 first holds at k=4 (2/70 ~ 0.029).
	if got := MinSamplesForAlpha(0.05); got != 4 {
		t.Errorf("MinSamplesForAlpha(0.05) = %d, want 4", got)
	}
	// k=3 gives 2/20 = 0.1.
	if got := MinSamplesForAlpha(0.1); got != 3 {
		t.Errorf("MinSamplesForAlpha(0.1) = %d, want 3", got)
	}
}
