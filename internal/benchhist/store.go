package benchhist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteFileAtomic writes data to path via a temp file in the same directory
// followed by a rename, so readers never observe a truncated file: an
// interrupted write leaves either the old content or the new content,
// nothing in between. The temp file is removed on any failure.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// Append adds one entry to the JSONL history at path, creating the file if
// it does not exist. The write is atomic (temp file + rename over the whole
// file), so a run interrupted mid-record can never leave a truncated or
// half-appended history. Existing bytes are preserved verbatim — Append
// does not re-encode (or even parse) earlier entries.
func Append(path string, e *Entry) error {
	if e.SchemaVersion == 0 {
		e.SchemaVersion = SchemaVersion
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("encode history entry: %w", err)
	}
	existing, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	var buf bytes.Buffer
	buf.Write(existing)
	if n := len(existing); n > 0 && existing[n-1] != '\n' {
		// Repair a missing trailing newline rather than gluing two entries
		// onto one line. Read rejects the earlier truncated entry either
		// way; this keeps the new entry intact.
		buf.WriteByte('\n')
	}
	buf.Write(line)
	buf.WriteByte('\n')
	return WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// Read loads every entry from the JSONL history at path, strictly: a
// missing or empty file, a malformed or truncated line, or an entry
// carrying an unknown schema_version is an error naming the offending line.
// Read never panics and always terminates — the file is consumed as one
// buffered read split on newlines, not a byte-at-a-time loop.
func Read(path string) ([]*Entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("%s: history is empty (run `psdf bench record` first)", path)
	}
	var entries []*Entry
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		e := &Entry{}
		if err := json.Unmarshal(line, e); err != nil {
			return nil, fmt.Errorf("%s:%d: malformed history entry (truncated write?): %v", path, i+1, err)
		}
		if e.SchemaVersion != SchemaVersion {
			return nil, fmt.Errorf("%s:%d: unsupported schema_version %d (this build reads version %d)",
				path, i+1, e.SchemaVersion, SchemaVersion)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Select resolves an entry selector against the history, returning the
// entry and its index. Selectors:
//
//	""            the latest entry
//	"latest"      the latest entry
//	"baseline"    the oldest entry
//	an integer    0-based index from the start; negative counts from the
//	              end (-1 = latest)
//	anything else a commit-SHA prefix; the latest matching entry wins
func Select(entries []*Entry, sel string) (*Entry, int, error) {
	if len(entries) == 0 {
		return nil, 0, fmt.Errorf("history has no entries")
	}
	switch sel {
	case "", "latest":
		return entries[len(entries)-1], len(entries) - 1, nil
	case "baseline":
		return entries[0], 0, nil
	}
	if n, err := strconv.Atoi(sel); err == nil {
		if n < 0 {
			n += len(entries)
		}
		if n < 0 || n >= len(entries) {
			return nil, 0, fmt.Errorf("entry index %s out of range (history has %d entries)", sel, len(entries))
		}
		return entries[n], n, nil
	}
	for i := len(entries) - 1; i >= 0; i-- {
		if strings.HasPrefix(entries[i].Commit, sel) {
			return entries[i], i, nil
		}
	}
	return nil, 0, fmt.Errorf("no entry with commit prefix %q among %d entries", sel, len(entries))
}
