// Package benchhist is the longitudinal regression observability layer: an
// append-only JSONL history of benchmark runs (BENCH_HISTORY.jsonl), where
// each entry anchors multi-sample per-spec timings and per-workload
// precision fingerprints to a commit SHA and a host fingerprint. On top of
// the store sit a benchstat-style statistical comparator (Mann–Whitney U
// over the timing samples, exact field equality over the fingerprints) and
// the CI gate that turns a comparison into an exit code.
//
// The precision fingerprint exists because the paper's evaluation (Section
// IX) is as much about what the analysis *proves* as about how fast it
// runs: a change that keeps every test green but silently widens earlier,
// gives up on a configuration, or stops using the HSM caches is a
// regression this layer must surface next to any slowdown.
package benchhist

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// SchemaVersion is the history-entry schema this build reads and writes.
// Readers reject entries carrying any other version rather than guessing at
// field semantics; bump it on any incompatible field change and document
// the new layout in EXPERIMENTS.md.
const SchemaVersion = 1

// Host fingerprints the machine a run was recorded on. Timing comparisons
// across differing hosts are still rendered, but the CI gate downgrades
// them to warnings — wall-clock deltas between different machines are not
// regressions.
type Host struct {
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
}

// Same reports whether two host fingerprints describe comparable machines.
func (h Host) Same(o Host) bool { return h == o }

func (h Host) String() string {
	return fmt.Sprintf("%s/%s %dcpu %s", h.OS, h.Arch, h.CPUs, h.GoVersion)
}

// SpecTiming is the multi-sample timing record of one experiment spec: the
// raw wall-clock samples plus derived summary statistics, and the obs phase
// breakdown from the final sample.
type SpecTiming struct {
	Title string `json:"title,omitempty"`
	// WallNs holds the raw per-sample wall times, in recording order. The
	// comparator runs on these; the derived fields below are stored for
	// human and script consumption.
	WallNs   []int64 `json:"wall_ns"`
	MeanNs   int64   `json:"mean_ns"`
	MedianNs int64   `json:"median_ns"`
	StddevNs int64   `json:"stddev_ns"`
	MinNs    int64   `json:"min_ns"`
	MaxNs    int64   `json:"max_ns"`
	// Phases is the engine phase breakdown (obs aggregate tracer totals)
	// captured by the final sample.
	Phases obs.PhaseTotals `json:"phases,omitempty"`
	// AllocsPerOp and BytesPerOp are the mean heap allocations and
	// allocated bytes per repetition, from runtime.MemStats deltas taken
	// around each sample when the record ran serially (parallelism 1 —
	// process-global deltas are meaningless with specs in flight
	// concurrently). Zero means "not captured": older entries predate the
	// fields and parallel records skip them, and since absent JSON fields
	// read back as zero with exactly that meaning, the schema stays at
	// version 1.
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
}

// HasAllocs reports whether this timing carries allocation measurements.
func (st *SpecTiming) HasAllocs() bool { return st != nil && st.AllocsPerOp > 0 }

// NewSpecTiming derives the summary statistics from raw samples.
func NewSpecTiming(title string, wallNs []int64, phases obs.PhaseTotals) *SpecTiming {
	st := &SpecTiming{Title: title, WallNs: wallNs, Phases: phases}
	if len(wallNs) == 0 {
		return st
	}
	sorted := append([]int64(nil), wallNs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	st.MinNs, st.MaxNs = sorted[0], sorted[len(sorted)-1]
	st.MedianNs = median(sorted)
	var sum float64
	for _, v := range wallNs {
		sum += float64(v)
	}
	mean := sum / float64(len(wallNs))
	st.MeanNs = int64(mean)
	if len(wallNs) > 1 {
		var ss float64
		for _, v := range wallNs {
			d := float64(v) - mean
			ss += d * d
		}
		st.StddevNs = int64(math.Sqrt(ss / float64(len(wallNs)-1)))
	}
	return st
}

// median of a sorted slice (even lengths average the middle pair).
func median(sorted []int64) int64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// Fingerprint is the precision fingerprint of one workload: every
// deterministic count that changes when the analysis proves more, proves
// less, or proves the same things a different way. Two runs of the same
// code on the same workload produce identical fingerprints (the sequential
// engine is deterministic), so any field delta is a real behavioral change,
// not noise — which is why the CI gate hard-fails on it while timings only
// warn.
type Fingerprint struct {
	// Core result shape.
	Matches   int    `json:"matches"`   // topology edges
	Finals    int    `json:"finals"`    // clean terminal configurations
	Tops      int    `json:"tops"`      // ⊤ (give-up) configurations
	Configs   int    `json:"configs"`   // distinct pCFG nodes explored
	Steps     int    `json:"steps"`     // propagate invocations
	Widenings int    `json:"widenings"` // widening applications
	Topology  string `json:"topology"`  // canonical match summary

	// Match verdict provenance (cartesian client).
	SimpleMatches int `json:"simple_matches"` // Section VII var+c matches
	HSMAttempts   int `json:"hsm_attempts"`
	HSMMatches    int `json:"hsm_matches"` // matches needing HSM proofs

	// Cache behavior: a disabled or broken cache path shows up here even
	// when the proved topology is unchanged.
	MemoHits        int `json:"memo_hits"`
	MemoMisses      int `json:"memo_misses"`
	ProverCacheHits int `json:"prover_cache_hits"`
	ProverProofs    int `json:"prover_proofs"`

	// Lint outcome: findings per diagnostic code plus the rank-bounds
	// verdict summary.
	LintFindings  map[string]int `json:"lint_findings,omitempty"`
	BoundsProven  int            `json:"bounds_proven"`
	BoundsByMatch int            `json:"bounds_proven_by_match"`
	BoundsViol    int            `json:"bounds_violated"`
	BoundsUnknown int            `json:"bounds_unknown"`
	BoundsNonAff  int            `json:"bounds_non_affine"`
}

// MemoHitRate derives the match-memo hit rate in [0,1].
func (f *Fingerprint) MemoHitRate() float64 {
	if f.MemoHits+f.MemoMisses == 0 {
		return 0
	}
	return float64(f.MemoHits) / float64(f.MemoHits+f.MemoMisses)
}

// field is one comparable fingerprint facet.
type field struct {
	name string
	val  string
}

// fields flattens the fingerprint into an ordered (name, value) list so
// Equal and DiffFields stay in lockstep with the struct.
func (f *Fingerprint) fields() []field {
	out := []field{
		{"matches", fmt.Sprint(f.Matches)},
		{"finals", fmt.Sprint(f.Finals)},
		{"tops", fmt.Sprint(f.Tops)},
		{"configs", fmt.Sprint(f.Configs)},
		{"steps", fmt.Sprint(f.Steps)},
		{"widenings", fmt.Sprint(f.Widenings)},
		{"topology", f.Topology},
		{"simple_matches", fmt.Sprint(f.SimpleMatches)},
		{"hsm_attempts", fmt.Sprint(f.HSMAttempts)},
		{"hsm_matches", fmt.Sprint(f.HSMMatches)},
		{"memo_hits", fmt.Sprint(f.MemoHits)},
		{"memo_misses", fmt.Sprint(f.MemoMisses)},
		{"prover_cache_hits", fmt.Sprint(f.ProverCacheHits)},
		{"prover_proofs", fmt.Sprint(f.ProverProofs)},
		{"bounds_proven", fmt.Sprint(f.BoundsProven)},
		{"bounds_proven_by_match", fmt.Sprint(f.BoundsByMatch)},
		{"bounds_violated", fmt.Sprint(f.BoundsViol)},
		{"bounds_unknown", fmt.Sprint(f.BoundsUnknown)},
		{"bounds_non_affine", fmt.Sprint(f.BoundsNonAff)},
	}
	codes := make([]string, 0, len(f.LintFindings))
	for c := range f.LintFindings {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		out = append(out, field{"lint[" + c + "]", fmt.Sprint(f.LintFindings[c])})
	}
	return out
}

// Equal reports whether two fingerprints are identical in every facet.
func (f *Fingerprint) Equal(g *Fingerprint) bool {
	return len(f.DiffFields(g)) == 0
}

// DiffFields returns a human-readable "name: old -> new" line per facet
// that differs between f (old) and g (new). Lint codes present on only one
// side diff against an implicit 0.
func (f *Fingerprint) DiffFields(g *Fingerprint) []string {
	fa, ga := f.fields(), g.fields()
	av := map[string]string{}
	var order []string
	for _, fd := range fa {
		av[fd.name] = fd.val
		order = append(order, fd.name)
	}
	seen := map[string]bool{}
	var diffs []string
	for _, gd := range ga {
		seen[gd.name] = true
		old, ok := av[gd.name]
		if !ok {
			old = "0"
		}
		if old != gd.val {
			diffs = append(diffs, fmt.Sprintf("%s: %s -> %s", gd.name, old, gd.val))
		}
	}
	for _, name := range order {
		if !seen[name] {
			diffs = append(diffs, fmt.Sprintf("%s: %s -> 0", name, av[name]))
		}
	}
	return diffs
}

// WorkerScaling is the parallel-engine scaling measurement of one
// workload: best-of-N wall time per worker count and the derived speedup
// ratios against the workers=1 run of the same record. On few-core hosts
// the ratio mostly measures how much work the coalescing scheduler saves
// (stale revisions absorbed before they are re-stepped), not parallel
// hardware — which is exactly why it belongs in the longitudinal history:
// a batching or scheduling regression shows up as a ratio drop even when
// absolute times drift with the host.
type WorkerScaling struct {
	NsPerOp map[int]int64 `json:"ns_per_op"`
	// Speedup maps worker count w (>1) to NsPerOp[1]/NsPerOp[w].
	Speedup map[int]float64 `json:"speedup,omitempty"`
}

// MaxWorkers returns the highest measured worker count, or 0.
func (ws *WorkerScaling) MaxWorkers() int {
	max := 0
	for w := range ws.NsPerOp {
		if w > max {
			max = w
		}
	}
	return max
}

// FuzzSweep summarizes one differential-fuzz sweep (`psdf fuzz`): the
// fixed generation seed, the program count, and how many programs landed
// in each divergence class. Soundness and engine divergences are CI-fatal
// before an entry is ever recorded, so in practice the longitudinal signal
// here is the precision-loss rate: a PR that makes the analysis give up
// (⊤) or report spurious edges on more generated programs moves Precision
// up even when every curated fingerprint is unchanged.
type FuzzSweep struct {
	Seed      int64 `json:"seed"`
	Programs  int   `json:"programs"`
	OK        int   `json:"ok"`
	Skipped   int   `json:"skipped,omitempty"`
	Precision int   `json:"precision"`
	Errors    int   `json:"errors"`
	Engine    int   `json:"engine"`
	Soundness int   `json:"soundness"`
	// Constructs is the ranked per-construct precision attribution the
	// sweep captured (`psdf fuzz -profile-out`): which generated source
	// construct the profiled widening failures and give-ups blame. Nil on
	// sweeps run without attribution, with exactly that meaning, so the
	// schema stays at version 1.
	Constructs []FuzzConstruct `json:"constructs,omitempty"`
}

// FuzzConstruct is one attribution row: a generator phase family (or
// "decor" for inter-phase decoration lines) with the precision losses the
// profiler blamed on its statements across the sweep.
type FuzzConstruct struct {
	Construct     string `json:"construct"`
	Programs      int    `json:"programs,omitempty"`
	WidenFailures int64  `json:"widen_failures,omitempty"`
	GiveUps       int64  `json:"give_ups,omitempty"`
	TopDemotions  int64  `json:"top_demotions,omitempty"`
	// TopPair is the most frequent failing bound-expression pair.
	TopPair string `json:"top_pair,omitempty"`
}

// PrecisionRate is the fraction of triaged (non-skipped) programs that
// diverged as precision losses, in [0,1].
func (fz *FuzzSweep) PrecisionRate() float64 {
	triaged := fz.Programs - fz.Skipped
	if triaged <= 0 {
		return 0
	}
	return float64(fz.Precision) / float64(triaged)
}

// Entry is one recorded benchmark run: everything needed to compare it
// against any other entry later — commit anchoring, host fingerprint,
// per-spec timing samples, and per-workload precision fingerprints. One
// entry is one JSONL line in BENCH_HISTORY.jsonl.
type Entry struct {
	SchemaVersion int       `json:"schema_version"`
	Commit        string    `json:"commit"`
	Time          time.Time `json:"time"`
	Note          string    `json:"note,omitempty"`
	Host          Host      `json:"host"`
	// Samples is the repetition count the per-spec WallNs slices were
	// recorded with.
	Samples      int                     `json:"samples"`
	Specs        map[string]*SpecTiming  `json:"specs"`
	Fingerprints map[string]*Fingerprint `json:"fingerprints"`
	// Scaling holds the per-workload worker-scaling measurement when the
	// record captured one. Nil on older entries and on records that skipped
	// it (-scaling-workers ""), with exactly that meaning, so the schema
	// stays at version 1.
	Scaling map[string]*WorkerScaling `json:"scaling,omitempty"`
	// Fuzz holds the differential-fuzz sweep summary when the record
	// attached one (-fuzz-summary). Nil on entries recorded without a
	// sweep, with exactly that meaning, so the schema stays at version 1.
	Fuzz *FuzzSweep `json:"fuzz,omitempty"`
}

// MinSpeedupWarnings reports, for each workload in the entry's scaling
// measurement, when the speedup at the highest recorded worker count falls
// below min. Warn-level by design: the ratio depends on host core count
// and load, so a drop is a prompt to look, not a hard gate like a
// precision change.
func (e *Entry) MinSpeedupWarnings(min float64) []string {
	if min <= 0 || len(e.Scaling) == 0 {
		return nil
	}
	names := make([]string, 0, len(e.Scaling))
	for n := range e.Scaling {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []string
	for _, n := range names {
		ws := e.Scaling[n]
		w := ws.MaxWorkers()
		if w <= 1 {
			continue
		}
		if got := ws.Speedup[w]; got < min {
			out = append(out, fmt.Sprintf("scaling %s: %.2fx at %d workers, below -min-speedup %.2fx", n, got, w, min))
		}
	}
	return out
}

// ShortCommit renders the entry's commit for tables.
func (e *Entry) ShortCommit() string {
	if len(e.Commit) > 12 {
		return e.Commit[:12]
	}
	if e.Commit == "" {
		return "(unknown)"
	}
	return e.Commit
}

// SpecIDs returns the entry's spec ids, sorted.
func (e *Entry) SpecIDs() []string {
	ids := make([]string, 0, len(e.Specs))
	for id := range e.Specs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// WorkloadNames returns the entry's fingerprinted workload names, sorted.
func (e *Entry) WorkloadNames() []string {
	names := make([]string, 0, len(e.Fingerprints))
	for n := range e.Fingerprints {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
