package benchhist

import (
	"strings"
	"testing"
	"time"
)

func entryWith(commit string, specs map[string][]int64, fps map[string]*Fingerprint) *Entry {
	e := &Entry{
		SchemaVersion: SchemaVersion,
		Commit:        commit,
		Time:          time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Host:          Host{OS: "linux", Arch: "amd64", CPUs: 8, GoVersion: "go1.22"},
		Specs:         map[string]*SpecTiming{},
		Fingerprints:  fps,
	}
	for id, wall := range specs {
		e.Specs[id] = NewSpecTiming(id, wall, nil)
		e.Samples = len(wall)
	}
	return e
}

func TestDiffVerdicts(t *testing.T) {
	base := []int64{100, 101, 99, 102, 100}
	slower := []int64{150, 151, 149, 152, 150}
	faster := []int64{50, 51, 49, 52, 50}
	jitter := []int64{101, 100, 99, 102, 101} // same distribution

	old := entryWith("aaaa", map[string][]int64{
		"steady": base, "regressed": base, "improved": base, "gone": base,
	}, nil)
	nw := entryWith("bbbb", map[string][]int64{
		"steady": jitter, "regressed": slower, "improved": faster, "fresh": base,
	}, nil)

	r := Diff(old, nw, DefaultThresholds())
	got := map[string]Verdict{}
	for _, d := range r.Specs {
		got[d.Spec] = d.Verdict
	}
	want := map[string]Verdict{
		"steady":    VerdictNoChange,
		"regressed": VerdictSlower,
		"improved":  VerdictFaster,
		"gone":      VerdictRemoved,
		"fresh":     VerdictAdded,
	}
	for spec, w := range want {
		if got[spec] != w {
			t.Errorf("%s: verdict %v, want %v", spec, got[spec], w)
		}
	}
	if regs := r.Regressions(); len(regs) != 1 || regs[0].Spec != "regressed" {
		t.Errorf("Regressions() = %+v, want [regressed]", regs)
	}
	out := r.String()
	for _, w := range []string{"regressed", "slower", "improved", "faster", "no change"} {
		if !strings.Contains(out, w) {
			t.Errorf("String() missing %q:\n%s", w, out)
		}
	}
}

func TestDiffSmallSampleNeverSignificant(t *testing.T) {
	// With one sample per side the Mann–Whitney p floor is 2/C(2,1) = 1:
	// even a 10x slowdown must report "no change" rather than a
	// false-confidence verdict.
	old := entryWith("aaaa", map[string][]int64{"s": {100}}, nil)
	nw := entryWith("bbbb", map[string][]int64{"s": {1000}}, nil)
	r := Diff(old, nw, DefaultThresholds())
	if r.Specs[0].Verdict != VerdictNoChange {
		t.Errorf("verdict %v, want no change (insufficient samples)", r.Specs[0].Verdict)
	}
}

func TestDiffIdenticalRunsReportNoChange(t *testing.T) {
	fp := map[string]*Fingerprint{
		"w1": {Matches: 3, Configs: 8, Widenings: 2, MemoHits: 40, MemoMisses: 4,
			LintFindings: map[string]int{"PSDF-W006": 1}},
	}
	samples := map[string][]int64{"fig2": {100, 101, 102, 99, 100}}
	r := Diff(entryWith("aaaa", samples, fp), entryWith("bbbb", samples, fp), DefaultThresholds())
	if r.PrecisionChanged() {
		t.Errorf("identical fingerprints reported as changed: %+v", r.Fingerprints)
	}
	for _, d := range r.Specs {
		if d.Verdict != VerdictNoChange {
			t.Errorf("%s: verdict %v, want no change", d.Spec, d.Verdict)
		}
	}
	fails, warns := r.Gate(true)
	if len(fails) != 0 || len(warns) != 0 {
		t.Errorf("gate on identical runs: failures %v, warnings %v", fails, warns)
	}
}

func TestDiffPrecisionChange(t *testing.T) {
	oldFP := map[string]*Fingerprint{
		"w1": {Matches: 3, Tops: 0, ProverCacheHits: 7, LintFindings: map[string]int{"PSDF-W006": 1}},
	}
	newFP := map[string]*Fingerprint{
		"w1": {Matches: 3, Tops: 1, ProverCacheHits: 0, LintFindings: map[string]int{"PSDF-W006": 1, "PSDF-E005": 1}},
	}
	samples := map[string][]int64{"fig2": {100, 101, 102}}
	r := Diff(entryWith("aaaa", samples, oldFP), entryWith("bbbb", samples, newFP), DefaultThresholds())
	if !r.PrecisionChanged() {
		t.Fatal("precision change not detected")
	}
	changed := r.Fingerprints[0].Changed
	joined := strings.Join(changed, "\n")
	for _, w := range []string{"tops: 0 -> 1", "prover_cache_hits: 7 -> 0", "lint[PSDF-E005]: 0 -> 1"} {
		if !strings.Contains(joined, w) {
			t.Errorf("diff lines missing %q:\n%s", w, joined)
		}
	}
	// Precision deltas hard-fail the gate regardless of the timing policy.
	fails, _ := r.Gate(false)
	if len(fails) == 0 {
		t.Error("gate did not fail on a precision delta")
	}
	if !strings.Contains(strings.Join(fails, "\n"), "w1") {
		t.Errorf("gate failure does not name the workload: %v", fails)
	}
}

func TestDiffFingerprintAddedRemoved(t *testing.T) {
	samples := map[string][]int64{"fig2": {100}}
	oldE := entryWith("aaaa", samples, map[string]*Fingerprint{"w1": {}, "w2": {}})
	newE := entryWith("bbbb", samples, map[string]*Fingerprint{"w1": {}, "w3": {}})
	r := Diff(oldE, newE, DefaultThresholds())
	fails, warns := r.Gate(false)
	if len(fails) != 1 || !strings.Contains(fails[0], "w2") {
		t.Errorf("removed workload should fail the gate: %v", fails)
	}
	found := false
	for _, w := range warns {
		if strings.Contains(w, "w3") {
			found = true
		}
	}
	if !found {
		t.Errorf("added workload should warn: %v", warns)
	}
}

func TestGateTimingPolicy(t *testing.T) {
	base := []int64{100, 101, 99, 102, 100}
	slower := []int64{200, 201, 199, 202, 200}
	oldE := entryWith("aaaa", map[string][]int64{"s": base}, nil)
	newE := entryWith("bbbb", map[string][]int64{"s": slower}, nil)

	r := Diff(oldE, newE, DefaultThresholds())
	if fails, warns := r.Gate(false); len(fails) != 0 || len(warns) != 1 {
		t.Errorf("warn-only policy: failures %v, warnings %v", fails, warns)
	}
	if fails, _ := r.Gate(true); len(fails) != 1 {
		t.Errorf("fail-on-time policy: failures %v", fails)
	}

	// Different hosts: timing downgrades to a warning even under
	// fail-on-time.
	newE.Host.CPUs = 2
	r = Diff(oldE, newE, DefaultThresholds())
	if !r.HostsDiffer {
		t.Fatal("HostsDiffer not set")
	}
	if fails, warns := r.Gate(true); len(fails) != 0 || len(warns) != 1 {
		t.Errorf("cross-host policy: failures %v, warnings %v", fails, warns)
	}
}

func TestMarkdownRendering(t *testing.T) {
	base := []int64{100, 101, 99, 102, 100}
	fp := map[string]*Fingerprint{"w1": {Matches: 1}}
	fp2 := map[string]*Fingerprint{"w1": {Matches: 2}}
	r := Diff(entryWith("aaaa1111deadbeef", map[string][]int64{"s": base}, fp),
		entryWith("bbbb2222deadbeef", map[string][]int64{"s": base}, fp2), DefaultThresholds())
	md := r.Markdown()
	for _, w := range []string{"| spec |", "`aaaa1111dead`", "matches: 1 -> 2", "**changed**"} {
		if !strings.Contains(md, w) {
			t.Errorf("Markdown() missing %q:\n%s", w, md)
		}
	}
}

func TestFingerprintEqualAndMemoHitRate(t *testing.T) {
	a := &Fingerprint{Matches: 1, MemoHits: 3, MemoMisses: 1}
	b := &Fingerprint{Matches: 1, MemoHits: 3, MemoMisses: 1}
	if !a.Equal(b) {
		t.Error("identical fingerprints not Equal")
	}
	if r := a.MemoHitRate(); r != 0.75 {
		t.Errorf("MemoHitRate = %v, want 0.75", r)
	}
	if (&Fingerprint{}).MemoHitRate() != 0 {
		t.Error("zero fingerprint hit rate should be 0")
	}
	b.Topology = "[0]->[1]"
	if a.Equal(b) {
		t.Error("topology change not detected")
	}
}

func TestGateAllocPolicy(t *testing.T) {
	base := []int64{100, 101, 99, 102, 100}
	oldE := entryWith("aaaa", map[string][]int64{"stencil": base, "engine": base, "fig2": base}, nil)
	newE := entryWith("bbbb", map[string][]int64{"stencil": base, "engine": base, "fig2": base}, nil)
	oldE.Specs["stencil"].AllocsPerOp, oldE.Specs["stencil"].BytesPerOp = 1000, 64000
	newE.Specs["stencil"].AllocsPerOp, newE.Specs["stencil"].BytesPerOp = 1500, 96000 // +50%
	oldE.Specs["engine"].AllocsPerOp = 2000
	newE.Specs["engine"].AllocsPerOp = 2100 // +5%, inside the threshold
	// fig2 carries no alloc data on either side: no delta, no gate entry.

	r := Diff(oldE, newE, DefaultThresholds())
	var stencil, engine, fig2 SpecDiff
	for _, d := range r.Specs {
		switch d.Spec {
		case "stencil":
			stencil = d
		case "engine":
			engine = d
		case "fig2":
			fig2 = d
		}
	}
	if !stencil.HasAllocDelta || stencil.AllocDelta < 0.49 || stencil.AllocDelta > 0.51 {
		t.Errorf("stencil alloc delta = %+v", stencil)
	}
	if !engine.HasAllocDelta {
		t.Errorf("engine alloc delta missing: %+v", engine)
	}
	if fig2.HasAllocDelta {
		t.Errorf("fig2 should have no alloc delta: %+v", fig2)
	}

	// Default policy: the regression warns but does not fail.
	fails, warns := r.GateWith(GatePolicy{})
	if len(fails) != 0 || len(warns) != 1 || !strings.Contains(warns[0], "stencil") {
		t.Errorf("warn-only policy: failures %v, warnings %v", fails, warns)
	}
	// FailOnAllocs promotes it; the within-threshold engine stays silent.
	fails, warns = r.GateWith(GatePolicy{FailOnAllocs: true})
	if len(fails) != 1 || !strings.Contains(fails[0], "stencil") {
		t.Errorf("fail-on-allocs policy: failures %v", fails)
	}
	if len(warns) != 0 {
		t.Errorf("fail-on-allocs policy: unexpected warnings %v", warns)
	}

	// The rendered tables grow allocs columns once any side has data.
	if out := r.String(); !strings.Contains(out, "al/op") || !strings.Contains(out, "+50.0%") {
		t.Errorf("String() missing alloc columns:\n%s", out)
	}
	if md := r.Markdown(); !strings.Contains(md, "allocs/op") {
		t.Errorf("Markdown() missing alloc columns:\n%s", md)
	}

	// Entries without alloc data keep the legacy narrow table.
	r2 := Diff(entryWith("cccc", map[string][]int64{"s": base}, nil),
		entryWith("dddd", map[string][]int64{"s": base}, nil), DefaultThresholds())
	if out := r2.String(); strings.Contains(out, "al/op") {
		t.Errorf("String() grew alloc columns without data:\n%s", out)
	}
}
