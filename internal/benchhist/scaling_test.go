package benchhist

import (
	"encoding/json"
	"testing"
)

func TestWorkerScalingRoundTrip(t *testing.T) {
	e := &Entry{
		SchemaVersion: SchemaVersion,
		Scaling: map[string]*WorkerScaling{
			"fig7_shift": {
				NsPerOp: map[int]int64{1: 4_000_000, 8: 1_000_000},
				Speedup: map[int]float64{8: 4.0},
			},
		},
	}
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Entry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	ws := back.Scaling["fig7_shift"]
	if ws == nil || ws.NsPerOp[8] != 1_000_000 || ws.Speedup[8] != 4.0 {
		t.Fatalf("scaling did not round-trip: %+v", back.Scaling)
	}
	if got := ws.MaxWorkers(); got != 8 {
		t.Fatalf("MaxWorkers = %d, want 8", got)
	}
}

func TestWorkerScalingOmittedWhenAbsent(t *testing.T) {
	data, err := json.Marshal(&Entry{SchemaVersion: SchemaVersion})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if string(data) != "" && jsonHasKey(data, "scaling") {
		t.Fatalf("empty scaling serialized: %s", data)
	}
	var back Entry
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Scaling != nil {
		t.Fatalf("absent scaling read back non-nil: %+v", back.Scaling)
	}
}

func jsonHasKey(data []byte, key string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(data, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

func TestMinSpeedupWarnings(t *testing.T) {
	e := &Entry{Scaling: map[string]*WorkerScaling{
		"slow": {NsPerOp: map[int]int64{1: 100, 8: 50}, Speedup: map[int]float64{8: 2.0}},
		"fast": {NsPerOp: map[int]int64{1: 100, 8: 20}, Speedup: map[int]float64{8: 5.0}},
		"solo": {NsPerOp: map[int]int64{1: 100}},
	}}
	warns := e.MinSpeedupWarnings(3.0)
	if len(warns) != 1 {
		t.Fatalf("warnings = %v, want exactly one (for slow)", warns)
	}
	if want := "scaling slow: 2.00x at 8 workers, below -min-speedup 3.00x"; warns[0] != want {
		t.Fatalf("warning = %q, want %q", warns[0], want)
	}
	if got := e.MinSpeedupWarnings(0); got != nil {
		t.Fatalf("disabled threshold produced warnings: %v", got)
	}
	if got := (&Entry{}).MinSpeedupWarnings(3.0); got != nil {
		t.Fatalf("entry without scaling produced warnings: %v", got)
	}
}
