package benchhist

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func testEntry(commit string, wall ...int64) *Entry {
	if len(wall) == 0 {
		wall = []int64{1000, 1100, 1050}
	}
	return &Entry{
		SchemaVersion: SchemaVersion,
		Commit:        commit,
		Time:          time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC),
		Host:          Host{OS: "linux", Arch: "amd64", CPUs: 8, GoVersion: "go1.22"},
		Samples:       len(wall),
		Specs: map[string]*SpecTiming{
			"fig2": NewSpecTiming("Fig 2", wall, nil),
		},
		Fingerprints: map[string]*Fingerprint{
			"fig2_exchange": {Matches: 2, Finals: 1, Configs: 10, Topology: "[0]->[1], [1]->[0]"},
		},
	}
}

// TestFuzzSweepRoundTrip: the fuzz summary survives the history and stays
// schema-version-1-compatible — entries without one read back as nil
// ("not captured"), and PrecisionRate excludes skipped programs.
func TestFuzzSweepRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	plain := testEntry("aaaa1111")
	withFuzz := testEntry("bbbb2222")
	withFuzz.Fuzz = &FuzzSweep{
		Seed: 1, Programs: 2000, OK: 1160, Skipped: 100,
		Precision: 740, Errors: 0, Engine: 0, Soundness: 0,
	}
	if err := Append(path, plain); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, withFuzz); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Fuzz != nil {
		t.Errorf("entry without a sweep read back Fuzz = %+v, want nil", entries[0].Fuzz)
	}
	fz := entries[1].Fuzz
	if fz == nil || fz.Programs != 2000 || fz.Precision != 740 || fz.Skipped != 100 {
		t.Fatalf("fuzz summary did not round-trip: %+v", fz)
	}
	// 740 precision losses over 1900 triaged programs.
	if got, want := fz.PrecisionRate(), 740.0/1900.0; got != want {
		t.Errorf("PrecisionRate = %v, want %v", got, want)
	}
	if (&FuzzSweep{}).PrecisionRate() != 0 {
		t.Error("empty sweep must have zero precision rate")
	}
}

func TestAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := Append(path, testEntry("aaaa1111")); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, testEntry("bbbb2222")); err != nil {
		t.Fatal(err)
	}
	entries, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if entries[0].Commit != "aaaa1111" || entries[1].Commit != "bbbb2222" {
		t.Errorf("commit order wrong: %s, %s", entries[0].Commit, entries[1].Commit)
	}
	st := entries[0].Specs["fig2"]
	if st == nil || st.MedianNs != 1050 || st.MinNs != 1000 || st.MaxNs != 1100 {
		t.Errorf("spec timing did not round-trip: %+v", st)
	}
	fp := entries[1].Fingerprints["fig2_exchange"]
	if fp == nil || fp.Matches != 2 || fp.Topology != "[0]->[1], [1]->[0]" {
		t.Errorf("fingerprint did not round-trip: %+v", fp)
	}
	// No stray temp files left behind.
	dents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(dents) != 1 {
		t.Errorf("directory not clean after atomic writes: %d entries", len(dents))
	}
}

func TestAppendPreservesForeignBytes(t *testing.T) {
	// Append must not re-encode or drop existing lines it cannot parse —
	// the history is append-only even across schema evolution.
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	foreign := `{"schema_version":99,"commit":"old","future_field":true}` + "\n"
	if err := os.WriteFile(path, []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, testEntry("cccc3333")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), foreign) {
		t.Errorf("existing bytes were rewritten:\n%s", data)
	}
}

func TestAppendRepairsMissingTrailingNewline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	if err := os.WriteFile(path, []byte(`{"schema_version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Append(path, testEntry("dddd4444")); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), data)
	}
}

func TestReadMalformedInputs(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	good, err := json.Marshal(testEntry("eeee5555"))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name, content, wantErr string
	}{
		{"empty.jsonl", "", "empty"},
		{"blank.jsonl", "\n\n  \n", "empty"},
		{"garbage.jsonl", "not json at all\n", "malformed"},
		{"truncated.jsonl", string(good) + "\n" + string(good[:len(good)/2]), "malformed"},
		{"unknown-version.jsonl", `{"schema_version":999,"commit":"x"}` + "\n", "unsupported schema_version 999"},
		{"missing-version.jsonl", `{"commit":"x"}` + "\n", "unsupported schema_version 0"},
		{"binary.jsonl", "\x00\x01\x02\xff\xfe\n", "malformed"},
	}
	for _, c := range cases {
		done := make(chan struct{})
		var entries []*Entry
		var rerr error
		go func() {
			defer close(done)
			entries, rerr = Read(write(c.name, c.content))
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: Read did not terminate", c.name)
		}
		if rerr == nil {
			t.Errorf("%s: Read succeeded (%d entries), want error containing %q", c.name, len(entries), c.wantErr)
			continue
		}
		if !strings.Contains(rerr.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, rerr, c.wantErr)
		}
	}

	if _, err := Read(filepath.Join(dir, "does-not-exist.jsonl")); err == nil {
		t.Error("Read of missing file succeeded")
	}
}

func TestSelect(t *testing.T) {
	entries := []*Entry{testEntry("aaaa1111"), testEntry("bbbb2222"), testEntry("abab3333")}
	cases := []struct {
		sel     string
		wantIdx int
		wantErr bool
	}{
		{"", 2, false},
		{"latest", 2, false},
		{"baseline", 0, false},
		{"0", 0, false},
		{"1", 1, false},
		{"-1", 2, false},
		{"-3", 0, false},
		{"3", 0, true},
		{"-4", 0, true},
		{"bbbb", 1, false},
		{"a", 2, false}, // prefix: latest match wins (abab3333)
		{"zzzz", 0, true},
	}
	for _, c := range cases {
		e, idx, err := Select(entries, c.sel)
		if c.wantErr {
			if err == nil {
				t.Errorf("Select(%q): want error, got entry #%d", c.sel, idx)
			}
			continue
		}
		if err != nil {
			t.Errorf("Select(%q): %v", c.sel, err)
			continue
		}
		if idx != c.wantIdx || e != entries[c.wantIdx] {
			t.Errorf("Select(%q) = #%d, want #%d", c.sel, idx, c.wantIdx)
		}
	}
	if _, _, err := Select(nil, "latest"); err == nil {
		t.Error("Select on empty history succeeded")
	}
}

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFileAtomic(path, []byte("first version with a long tail"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("short"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "short" {
		t.Errorf("content = %q, want %q", data, "short")
	}
}

func TestNewSpecTimingStats(t *testing.T) {
	st := NewSpecTiming("t", []int64{40, 10, 30, 20}, nil)
	if st.MinNs != 10 || st.MaxNs != 40 || st.MedianNs != 25 || st.MeanNs != 25 {
		t.Errorf("stats wrong: %+v", st)
	}
	if st.StddevNs == 0 {
		t.Error("stddev should be nonzero")
	}
	if got := NewSpecTiming("t", []int64{7}, nil); got.MedianNs != 7 || got.StddevNs != 0 {
		t.Errorf("single sample stats wrong: %+v", got)
	}
	if got := NewSpecTiming("t", nil, nil); got.MedianNs != 0 {
		t.Errorf("empty sample stats wrong: %+v", got)
	}
}
