package benchhist

import (
	"math"
	"sort"
)

// MannWhitneyU runs the two-sided Mann–Whitney U test on two independent
// samples and returns the p-value for the null hypothesis that the two
// distributions are equal. This is the benchstat approach to timing
// comparisons: rank-based, so a single outlier sample cannot fake (or mask)
// a regression the way a mean-based test can.
//
// For small tie-free samples (n*m <= 1024) the exact U distribution is
// computed by dynamic programming; larger or tied samples use the normal
// approximation with tie correction and continuity correction. Degenerate
// inputs (either sample empty, or all observations identical) return 1.
func MannWhitneyU(x, y []float64) float64 {
	n, m := len(x), len(y)
	if n == 0 || m == 0 {
		return 1
	}

	// Rank the pooled observations, averaging ranks across ties.
	type obs struct {
		v     float64
		fromX bool
	}
	pool := make([]obs, 0, n+m)
	for _, v := range x {
		pool = append(pool, obs{v, true})
	}
	for _, v := range y {
		pool = append(pool, obs{v, false})
	}
	sort.Slice(pool, func(i, j int) bool { return pool[i].v < pool[j].v })

	ranks := make([]float64, n+m)
	ties := false
	var tieTerm float64 // sum of t^3 - t over tie groups, for the variance correction
	for i := 0; i < len(pool); {
		j := i
		for j < len(pool) && pool[j].v == pool[i].v {
			j++
		}
		avg := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = avg
		}
		if t := j - i; t > 1 {
			ties = true
			tieTerm += float64(t*t*t - t)
		}
		i = j
	}

	var rx float64 // rank sum of sample x
	for i, o := range pool {
		if o.fromX {
			rx += ranks[i]
		}
	}
	u1 := rx - float64(n*(n+1))/2
	u2 := float64(n*m) - u1
	u := math.Min(u1, u2)

	if tieTerm >= float64((n+m)*(n+m)*(n+m)-(n+m)) && n+m > 1 {
		return 1 // every observation identical: no evidence of difference
	}
	if !ties && n*m <= 1024 {
		return exactMannWhitney(n, m, u)
	}
	return normalMannWhitney(n, m, u, tieTerm)
}

// exactMannWhitney computes the exact two-sided p-value 2 * P(U <= u). In
// a tie-free pooled ranking, sorting the x-sample ascending turns U into a
// non-decreasing sequence of per-observation counts c_i = #{y below x_i},
// so the number of arrangements with U = k is the number of partitions of k
// into at most n parts, each part at most m. f implements the standard
// partition recurrence (either no part equals b, or one does and is
// removed).
func exactMannWhitney(n, m int, u float64) float64 {
	uInt := int(math.Floor(u + 1e-9)) // tie-free U is integral
	memo := map[[3]int]float64{}
	var f func(a, b, k int) float64
	f = func(a, b, k int) float64 {
		if k < 0 {
			return 0
		}
		if k == 0 {
			return 1
		}
		if a == 0 || b == 0 {
			return 0
		}
		key := [3]int{a, b, k}
		if v, ok := memo[key]; ok {
			return v
		}
		v := f(a, b-1, k) + f(a-1, b, k-b)
		memo[key] = v
		return v
	}
	var below float64
	for k := 0; k <= uInt; k++ {
		below += f(n, m, k)
	}
	total := 1.0 // C(n+m, n)
	for i := 1; i <= n; i++ {
		total = total * float64(m+i) / float64(i)
	}
	p := 2 * below / total
	if p > 1 {
		p = 1
	}
	return p
}

// normalMannWhitney is the large-sample / tied-sample normal approximation
// with tie and continuity corrections.
func normalMannWhitney(n, m int, u, tieTerm float64) float64 {
	nm := float64(n * m)
	nTot := float64(n + m)
	mu := nm / 2
	variance := nm / 12 * (nTot + 1 - tieTerm/(nTot*(nTot-1)))
	if variance <= 0 {
		return 1
	}
	z := (u - mu + 0.5) / math.Sqrt(variance) // continuity correction toward the mean
	if z > 0 {
		z = 0 // u = min(u1,u2) <= mu; clamp rounding artifacts
	}
	return 2 * 0.5 * math.Erfc(-z/math.Sqrt2)
}

// MinSamplesForAlpha reports the smallest per-side sample count at which a
// tie-free Mann–Whitney test can reach significance level alpha (the
// extreme arrangement has p = 2/C(2k, k)). Used by the CLI to warn when
// -sample is too small for the configured alpha.
func MinSamplesForAlpha(alpha float64) int {
	for k := 1; k <= 64; k++ {
		// C(2k, k) via the multiplicative formula.
		c := 1.0
		for i := 1; i <= k; i++ {
			c = c * float64(k+i) / float64(i)
		}
		if 2/c <= alpha {
			return k
		}
	}
	return 64
}
