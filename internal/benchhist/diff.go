package benchhist

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Thresholds configures when a timing delta counts as a change. The
// defaults mirror benchstat: significance at p <= 0.05, and a minimum
// relative median movement so statistically-significant-but-tiny shifts on
// quiet machines do not flag.
type Thresholds struct {
	// Alpha is the Mann–Whitney p-value at or below which a timing delta
	// is considered statistically significant.
	Alpha float64
	// MinDelta is the minimum |relative median change| (e.g. 0.05 = 5%)
	// for a significant delta to be reported as faster/slower.
	MinDelta float64
	// MaxAllocDelta is the relative allocs-per-op growth past which a spec
	// counts as an allocation regression (0 selects the default 20%).
	// Allocation counts are near-deterministic — no Mann–Whitney needed —
	// so the threshold only absorbs GC-timing jitter in the MemStats
	// deltas, not sampling noise.
	MaxAllocDelta float64
}

// DefaultThresholds returns the standard gate configuration.
func DefaultThresholds() Thresholds {
	return Thresholds{Alpha: 0.05, MinDelta: 0.05, MaxAllocDelta: 0.20}
}

// Verdict classifies one spec's timing comparison.
type Verdict int

// Verdicts.
const (
	// VerdictNoChange: no statistically significant movement past the
	// thresholds.
	VerdictNoChange Verdict = iota
	// VerdictFaster: the new entry's median is significantly lower.
	VerdictFaster
	// VerdictSlower: the new entry's median is significantly higher.
	VerdictSlower
	// VerdictAdded: the spec exists only in the new entry.
	VerdictAdded
	// VerdictRemoved: the spec exists only in the old entry.
	VerdictRemoved
)

func (v Verdict) String() string {
	switch v {
	case VerdictNoChange:
		return "no change"
	case VerdictFaster:
		return "faster"
	case VerdictSlower:
		return "slower"
	case VerdictAdded:
		return "added"
	case VerdictRemoved:
		return "removed"
	}
	return fmt.Sprintf("verdict(%d)", int(v))
}

// SpecDiff is the timing comparison of one spec across two entries.
type SpecDiff struct {
	Spec     string
	Old, New *SpecTiming // nil when Added/Removed
	// P is the Mann–Whitney two-sided p-value over the raw samples.
	P float64
	// Delta is the relative median change, (new-old)/old.
	Delta   float64
	Verdict Verdict
	// AllocDelta is the relative allocs-per-op change, (new-old)/old;
	// valid only when HasAllocDelta (both entries carry allocation data).
	AllocDelta    float64
	HasAllocDelta bool
}

// FingerprintDiff is the precision comparison of one workload.
type FingerprintDiff struct {
	Workload string
	// Changed holds one "facet: old -> new" line per differing facet;
	// empty means the fingerprints are identical.
	Changed        []string
	Added, Removed bool
}

// PrecisionChanged reports whether this workload's fingerprint moved in any
// way (facet change, appearance, or disappearance).
func (d *FingerprintDiff) PrecisionChanged() bool {
	return len(d.Changed) > 0 || d.Added || d.Removed
}

// Report is a full statistical comparison of two history entries.
type Report struct {
	Old, New           *Entry
	OldIndex, NewIndex int
	Th                 Thresholds
	Specs              []SpecDiff        // sorted by spec id
	Fingerprints       []FingerprintDiff // sorted by workload, changed ones only unless KeepUnchanged
	// HostsDiffer notes that the two entries were recorded on different
	// host fingerprints, making timing verdicts advisory at best.
	HostsDiffer bool
}

// Diff statistically compares two history entries: Mann–Whitney over every
// spec's timing samples, exact facet equality over every workload's
// precision fingerprint.
func Diff(old, new *Entry, th Thresholds) *Report {
	if th.Alpha <= 0 {
		th = DefaultThresholds()
	}
	r := &Report{Old: old, New: new, Th: th, HostsDiffer: !old.Host.Same(new.Host)}

	ids := map[string]bool{}
	for id := range old.Specs {
		ids[id] = true
	}
	for id := range new.Specs {
		ids[id] = true
	}
	sorted := make([]string, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Strings(sorted)
	for _, id := range sorted {
		o, n := old.Specs[id], new.Specs[id]
		d := SpecDiff{Spec: id, Old: o, New: n, P: 1}
		switch {
		case o == nil:
			d.Verdict = VerdictAdded
		case n == nil:
			d.Verdict = VerdictRemoved
		default:
			d.P = MannWhitneyU(toFloats(o.WallNs), toFloats(n.WallNs))
			if o.MedianNs > 0 {
				d.Delta = float64(n.MedianNs-o.MedianNs) / float64(o.MedianNs)
			}
			if d.P <= th.Alpha && abs(d.Delta) >= th.MinDelta {
				if d.Delta < 0 {
					d.Verdict = VerdictFaster
				} else {
					d.Verdict = VerdictSlower
				}
			}
			if o.HasAllocs() && n.HasAllocs() {
				d.AllocDelta = float64(n.AllocsPerOp-o.AllocsPerOp) / float64(o.AllocsPerOp)
				d.HasAllocDelta = true
			}
		}
		r.Specs = append(r.Specs, d)
	}

	names := map[string]bool{}
	for n := range old.Fingerprints {
		names[n] = true
	}
	for n := range new.Fingerprints {
		names[n] = true
	}
	wls := make([]string, 0, len(names))
	for n := range names {
		wls = append(wls, n)
	}
	sort.Strings(wls)
	for _, w := range wls {
		o, n := old.Fingerprints[w], new.Fingerprints[w]
		fd := FingerprintDiff{Workload: w}
		switch {
		case o == nil:
			fd.Added = true
		case n == nil:
			fd.Removed = true
		default:
			fd.Changed = o.DiffFields(n)
		}
		r.Fingerprints = append(r.Fingerprints, fd)
	}
	return r
}

// PrecisionChanged reports whether any workload's precision fingerprint
// moved.
func (r *Report) PrecisionChanged() bool {
	for i := range r.Fingerprints {
		if r.Fingerprints[i].PrecisionChanged() {
			return true
		}
	}
	return false
}

// Regressions returns the specs that got significantly slower.
func (r *Report) Regressions() []SpecDiff {
	var out []SpecDiff
	for _, d := range r.Specs {
		if d.Verdict == VerdictSlower {
			out = append(out, d)
		}
	}
	return out
}

// GatePolicy selects which regression classes fail the CI gate rather
// than warn.
type GatePolicy struct {
	// FailOnTime promotes significant same-host slowdowns to failures.
	FailOnTime bool
	// FailOnAllocs promotes allocs-per-op growth past
	// Thresholds.MaxAllocDelta to failures. Allocation counts are
	// near-deterministic, so unlike wall time this gate does not require
	// matching host fingerprints.
	FailOnAllocs bool
}

// Gate evaluates the default CI policy (see GateWith) with only the
// timing class toggled.
func (r *Report) Gate(failOnTime bool) (failures, warnings []string) {
	return r.GateWith(GatePolicy{FailOnTime: failOnTime})
}

// GateWith evaluates the CI policy over the report: precision-fingerprint
// changes are always failures (they are deterministic, so any delta is a
// real behavioral change); timing regressions are failures only when
// p.FailOnTime is set and the two entries share a host fingerprint —
// otherwise they are warnings, the right default for noisy shared runners;
// allocation regressions past Thresholds.MaxAllocDelta fail when
// p.FailOnAllocs is set and warn otherwise.
func (r *Report) GateWith(p GatePolicy) (failures, warnings []string) {
	failOnTime := p.FailOnTime
	for i := range r.Fingerprints {
		fd := &r.Fingerprints[i]
		switch {
		case fd.Added:
			warnings = append(warnings, fmt.Sprintf("precision: workload %s appeared (no baseline fingerprint)", fd.Workload))
		case fd.Removed:
			failures = append(failures, fmt.Sprintf("precision: workload %s disappeared from the run", fd.Workload))
		case len(fd.Changed) > 0:
			failures = append(failures, fmt.Sprintf("precision: %s fingerprint changed: %s",
				fd.Workload, strings.Join(fd.Changed, "; ")))
		}
	}
	for _, d := range r.Specs {
		if d.Verdict != VerdictSlower {
			continue
		}
		msg := fmt.Sprintf("timing: %s slower by %+.1f%% (median %v -> %v, p=%.3f)",
			d.Spec, 100*d.Delta, time.Duration(d.Old.MedianNs), time.Duration(d.New.MedianNs), d.P)
		if failOnTime && !r.HostsDiffer {
			failures = append(failures, msg)
		} else {
			warnings = append(warnings, msg)
		}
	}
	maxAlloc := r.Th.MaxAllocDelta
	if maxAlloc <= 0 {
		maxAlloc = DefaultThresholds().MaxAllocDelta
	}
	for _, d := range r.Specs {
		if !d.HasAllocDelta || d.AllocDelta <= maxAlloc {
			continue
		}
		msg := fmt.Sprintf("allocs: %s allocs/op grew %+.1f%% (%d -> %d, threshold %+.0f%%)",
			d.Spec, 100*d.AllocDelta, d.Old.AllocsPerOp, d.New.AllocsPerOp, 100*maxAlloc)
		if p.FailOnAllocs {
			failures = append(failures, msg)
		} else {
			warnings = append(warnings, msg)
		}
	}
	return failures, warnings
}

// String renders the report as the terminal table `psdf bench diff` prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "bench diff: %s (#%d, %s) -> %s (#%d, %s)\n",
		r.Old.ShortCommit(), r.OldIndex, r.Old.Time.Format(time.RFC3339),
		r.New.ShortCommit(), r.NewIndex, r.New.Time.Format(time.RFC3339))
	if r.HostsDiffer {
		fmt.Fprintf(&b, "  WARNING: hosts differ (%s vs %s); timing verdicts are advisory\n", r.Old.Host, r.New.Host)
	}
	showAllocs := r.hasAllocColumns()
	if showAllocs {
		fmt.Fprintf(&b, "  %-14s %14s %14s %9s %8s %12s %12s %9s  %s\n",
			"spec", "old median", "new median", "delta", "p", "old al/op", "new al/op", "al delta", "verdict")
	} else {
		fmt.Fprintf(&b, "  %-14s %14s %14s %9s %8s  %s\n", "spec", "old median", "new median", "delta", "p", "verdict")
	}
	for _, d := range r.Specs {
		oldM, newM, delta := "-", "-", "-"
		if d.Old != nil {
			oldM = time.Duration(d.Old.MedianNs).Round(time.Microsecond).String()
		}
		if d.New != nil {
			newM = time.Duration(d.New.MedianNs).Round(time.Microsecond).String()
		}
		if d.Old != nil && d.New != nil {
			delta = fmt.Sprintf("%+.1f%%", 100*d.Delta)
		}
		if showAllocs {
			oldA, newA, deltaA := "-", "-", "-"
			if d.Old.HasAllocs() {
				oldA = fmt.Sprint(d.Old.AllocsPerOp)
			}
			if d.New.HasAllocs() {
				newA = fmt.Sprint(d.New.AllocsPerOp)
			}
			if d.HasAllocDelta {
				deltaA = fmt.Sprintf("%+.1f%%", 100*d.AllocDelta)
			}
			fmt.Fprintf(&b, "  %-14s %14s %14s %9s %8.3f %12s %12s %9s  %s\n",
				d.Spec, oldM, newM, delta, d.P, oldA, newA, deltaA, d.Verdict)
		} else {
			fmt.Fprintf(&b, "  %-14s %14s %14s %9s %8.3f  %s\n", d.Spec, oldM, newM, delta, d.P, d.Verdict)
		}
	}
	changed := false
	for i := range r.Fingerprints {
		fd := &r.Fingerprints[i]
		if !fd.PrecisionChanged() {
			continue
		}
		if !changed {
			fmt.Fprintf(&b, "  precision fingerprints:\n")
			changed = true
		}
		switch {
		case fd.Added:
			fmt.Fprintf(&b, "    %s: ADDED\n", fd.Workload)
		case fd.Removed:
			fmt.Fprintf(&b, "    %s: REMOVED\n", fd.Workload)
		default:
			fmt.Fprintf(&b, "    %s: CHANGED\n", fd.Workload)
			for _, c := range fd.Changed {
				fmt.Fprintf(&b, "      %s\n", c)
			}
		}
	}
	if !changed {
		fmt.Fprintf(&b, "  precision fingerprints: identical across %d workloads\n", len(r.Fingerprints))
	}
	return b.String()
}

// Markdown renders the report as a markdown document (the `-markdown` flag
// and the CI job summary).
func (r *Report) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## Bench diff: `%s` → `%s`\n\n", r.Old.ShortCommit(), r.New.ShortCommit())
	fmt.Fprintf(&b, "- old: entry #%d, %s, host %s\n", r.OldIndex, r.Old.Time.Format(time.RFC3339), r.Old.Host)
	fmt.Fprintf(&b, "- new: entry #%d, %s, host %s\n", r.NewIndex, r.New.Time.Format(time.RFC3339), r.New.Host)
	fmt.Fprintf(&b, "- thresholds: alpha %.3g, min delta %.1f%%\n\n", r.Th.Alpha, 100*r.Th.MinDelta)
	if r.HostsDiffer {
		fmt.Fprintf(&b, "> **Warning:** hosts differ; timing verdicts are advisory.\n\n")
	}
	showAllocs := r.hasAllocColumns()
	if showAllocs {
		fmt.Fprintf(&b, "| spec | old median | new median | delta | p | old allocs/op | new allocs/op | alloc delta | verdict |\n")
		fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---:|---:|---:|---|\n")
	} else {
		fmt.Fprintf(&b, "| spec | old median | new median | delta | p | verdict |\n")
		fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---|\n")
	}
	for _, d := range r.Specs {
		oldM, newM, delta := "-", "-", "-"
		if d.Old != nil {
			oldM = time.Duration(d.Old.MedianNs).Round(time.Microsecond).String()
		}
		if d.New != nil {
			newM = time.Duration(d.New.MedianNs).Round(time.Microsecond).String()
		}
		if d.Old != nil && d.New != nil {
			delta = fmt.Sprintf("%+.1f%%", 100*d.Delta)
		}
		if showAllocs {
			oldA, newA, deltaA := "-", "-", "-"
			if d.Old.HasAllocs() {
				oldA = fmt.Sprint(d.Old.AllocsPerOp)
			}
			if d.New.HasAllocs() {
				newA = fmt.Sprint(d.New.AllocsPerOp)
			}
			if d.HasAllocDelta {
				deltaA = fmt.Sprintf("%+.1f%%", 100*d.AllocDelta)
			}
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %.3f | %s | %s | %s | %s |\n",
				d.Spec, oldM, newM, delta, d.P, oldA, newA, deltaA, d.Verdict)
		} else {
			fmt.Fprintf(&b, "| %s | %s | %s | %s | %.3f | %s |\n", d.Spec, oldM, newM, delta, d.P, d.Verdict)
		}
	}
	b.WriteString("\n### Precision fingerprints\n\n")
	any := false
	for i := range r.Fingerprints {
		fd := &r.Fingerprints[i]
		if !fd.PrecisionChanged() {
			continue
		}
		any = true
		switch {
		case fd.Added:
			fmt.Fprintf(&b, "- `%s`: **added**\n", fd.Workload)
		case fd.Removed:
			fmt.Fprintf(&b, "- `%s`: **removed**\n", fd.Workload)
		default:
			fmt.Fprintf(&b, "- `%s`: **changed**\n", fd.Workload)
			for _, c := range fd.Changed {
				fmt.Fprintf(&b, "  - %s\n", c)
			}
		}
	}
	if !any {
		fmt.Fprintf(&b, "Identical across all %d workloads.\n", len(r.Fingerprints))
	}
	return b.String()
}

// hasAllocColumns reports whether either side of any spec carries
// allocation measurements, i.e. whether the rendered tables should grow
// the allocs/op columns.
func (r *Report) hasAllocColumns() bool {
	for _, d := range r.Specs {
		if d.Old.HasAllocs() || d.New.HasAllocs() {
			return true
		}
	}
	return false
}

func toFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
