// Package sym implements exact symbolic integer arithmetic: multivariate
// polynomials with int64 coefficients over named symbols (np, nrows, loop
// variables, widening parameters). Process-set bounds, message expressions
// and HSM parameters are all sym.Expr values, so equality of symbolic
// quantities reduces to syntactic equality of normal forms, optionally after
// substituting known invariants such as np = nrows*ncols.
package sym

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// term is a single monomial: coefficient times a product of variables.
// vars is sorted and may contain repeats (x*x has vars ["x","x"]).
type term struct {
	coef int64
	vars []string
}

func (t term) key() string { return strings.Join(t.vars, "*") }

// Expr is a polynomial in normal form: terms sorted by monomial key, no zero
// coefficients. The zero value is the polynomial 0. Exprs are immutable;
// all operations return new values.
type Expr struct {
	terms []term
}

// Zero is the polynomial 0.
var Zero = Expr{}

// One is the polynomial 1.
var One = Const(1)

// Const returns the constant polynomial c.
func Const(c int64) Expr {
	if c == 0 {
		return Expr{}
	}
	return Expr{terms: []term{{coef: c}}}
}

// varCache interns the Expr for each variable name. Var is the hottest
// constructor (bound enrichment and substitution mint the same handful of
// names over and over), and since Exprs are immutable — every operation
// that changes a coefficient copies the terms first, and vars slices are
// shared freely already (Neg, scaleTerms) — handing out one shared Expr
// per name is safe.
var varCache sync.Map // string -> Expr

// Var returns the polynomial consisting of the single variable name.
func Var(name string) Expr {
	if e, ok := varCache.Load(name); ok {
		return e.(Expr)
	}
	e := Expr{terms: []term{{coef: 1, vars: []string{name}}}}
	varCache.Store(name, e)
	return e
}

// VarPlus returns name + c, the paper's "var + c" message-expression form.
func VarPlus(name string, c int64) Expr { return Add(Var(name), Const(c)) }

// normalize sorts terms and merges equal monomials, dropping zeros.
func normalize(ts []term) Expr {
	byKey := map[string]*term{}
	var keys []string
	for _, t := range ts {
		k := t.key()
		if ex, ok := byKey[k]; ok {
			ex.coef += t.coef
		} else {
			cp := term{coef: t.coef, vars: append([]string(nil), t.vars...)}
			byKey[k] = &cp
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var out []term
	for _, k := range keys {
		if byKey[k].coef != 0 {
			out = append(out, *byKey[k])
		}
	}
	return Expr{terms: out}
}

// compareMonomials orders two sorted variable lists exactly as their
// '*'-joined key strings would compare, without materializing the strings.
// This must agree with normalize's sort.Strings order so that merged and
// map-normalized expressions share one normal form.
func compareMonomials(a, b []string) int {
	ia, ja := 0, 0
	ib, jb := 0, 0
	for {
		ca, oka := monomialByte(a, &ia, &ja)
		cb, okb := monomialByte(b, &ib, &jb)
		switch {
		case !oka && !okb:
			return 0
		case !oka:
			return -1
		case !okb:
			return 1
		case ca != cb:
			if ca < cb {
				return -1
			}
			return 1
		}
	}
}

// monomialByte yields successive bytes of strings.Join(x, "*").
func monomialByte(x []string, i, j *int) (byte, bool) {
	for *i < len(x) {
		if s := x[*i]; *j < len(s) {
			c := s[*j]
			*j++
			return c, true
		}
		*i++
		*j = 0
		if *i < len(x) {
			return '*', true
		}
	}
	return 0, false
}

// Add returns a + b as a linear merge of the two normal forms (the hottest
// operation in bound enrichment; the merge avoids normalize's map and sort).
func Add(a, b Expr) Expr {
	if len(a.terms) == 0 {
		return b
	}
	if len(b.terms) == 0 {
		return a
	}
	out := make([]term, 0, len(a.terms)+len(b.terms))
	i, j := 0, 0
	for i < len(a.terms) && j < len(b.terms) {
		switch cmp := compareMonomials(a.terms[i].vars, b.terms[j].vars); {
		case cmp < 0:
			out = append(out, a.terms[i])
			i++
		case cmp > 0:
			out = append(out, b.terms[j])
			j++
		default:
			if c := a.terms[i].coef + b.terms[j].coef; c != 0 {
				out = append(out, term{coef: c, vars: a.terms[i].vars})
			}
			i++
			j++
		}
	}
	out = append(out, a.terms[i:]...)
	out = append(out, b.terms[j:]...)
	return Expr{terms: out}
}

// Sub returns a - b.
func Sub(a, b Expr) Expr { return Add(a, Neg(b)) }

// Neg returns -a.
func Neg(a Expr) Expr {
	ts := make([]term, len(a.terms))
	for i, t := range a.terms {
		ts[i] = term{coef: -t.coef, vars: t.vars}
	}
	return Expr{terms: ts}
}

// Mul returns a * b.
func Mul(a, b Expr) Expr {
	if len(a.terms) == 0 || len(b.terms) == 0 {
		return Expr{}
	}
	// Constant factors scale coefficients in place and preserve the normal
	// form, skipping the general product + normalize.
	if c, ok := b.IsConst(); ok {
		return scaleTerms(a, c)
	}
	if c, ok := a.IsConst(); ok {
		return scaleTerms(b, c)
	}
	var ts []term
	for _, ta := range a.terms {
		for _, tb := range b.terms {
			vars := make([]string, 0, len(ta.vars)+len(tb.vars))
			vars = append(vars, ta.vars...)
			vars = append(vars, tb.vars...)
			sort.Strings(vars)
			ts = append(ts, term{coef: ta.coef * tb.coef, vars: vars})
		}
	}
	return normalize(ts)
}

// scaleTerms multiplies every coefficient by the nonzero-checked constant c.
func scaleTerms(a Expr, c int64) Expr {
	if c == 0 {
		return Expr{}
	}
	if c == 1 {
		return a
	}
	ts := make([]term, len(a.terms))
	for i, t := range a.terms {
		ts[i] = term{coef: c * t.coef, vars: t.vars}
	}
	return Expr{terms: ts}
}

// Scale returns c * a.
func Scale(a Expr, c int64) Expr { return scaleTerms(a, c) }

// AddConst returns a + c without building the intermediate constant
// polynomial: the constant monomial (empty key) always sorts first.
func AddConst(a Expr, c int64) Expr {
	if c == 0 {
		return a
	}
	if len(a.terms) == 0 {
		return Const(c)
	}
	if len(a.terms[0].vars) == 0 {
		nc := a.terms[0].coef + c
		if nc == 0 {
			return Expr{terms: a.terms[1:]}
		}
		ts := append([]term(nil), a.terms...)
		ts[0].coef = nc
		return Expr{terms: ts}
	}
	ts := make([]term, 0, len(a.terms)+1)
	ts = append(ts, term{coef: c})
	ts = append(ts, a.terms...)
	return Expr{terms: ts}
}

// IsZero reports whether e is the polynomial 0.
func (e Expr) IsZero() bool { return len(e.terms) == 0 }

// IsConst reports whether e is a constant, returning its value.
func (e Expr) IsConst() (int64, bool) {
	switch len(e.terms) {
	case 0:
		return 0, true
	case 1:
		if len(e.terms[0].vars) == 0 {
			return e.terms[0].coef, true
		}
	}
	return 0, false
}

// Equal reports whether a and b are syntactically equal normal forms.
func Equal(a, b Expr) bool {
	if len(a.terms) != len(b.terms) {
		return false
	}
	for i := range a.terms {
		if a.terms[i].coef != b.terms[i].coef || a.terms[i].key() != b.terms[i].key() {
			return false
		}
	}
	return true
}

// Key returns a canonical string usable as a map key. Unlike String it
// serializes the normal form directly — no re-ordering, one builder pass —
// because Key sits on the hot dedup/memoization paths (bound atom sets, HSM
// prover cache, match memo).
func (e Expr) Key() string {
	if len(e.terms) == 0 {
		return "0"
	}
	n := 0
	for _, t := range e.terms {
		n += 4 + len(t.vars)
		for _, v := range t.vars {
			n += len(v)
		}
	}
	var b strings.Builder
	b.Grow(n)
	for i, t := range e.terms {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatInt(t.coef, 10))
		for _, v := range t.vars {
			b.WriteByte('*')
			b.WriteString(v)
		}
	}
	return b.String()
}

// appendKey renders e.Key() into dst byte-for-byte (the canonical
// "coef*var*var|..." form) without the string conversion.
func (e Expr) appendKey(dst []byte) []byte {
	if len(e.terms) == 0 {
		return append(dst, '0')
	}
	for i, t := range e.terms {
		if i > 0 {
			dst = append(dst, '|')
		}
		dst = strconv.AppendInt(dst, t.coef, 10)
		for _, v := range t.vars {
			dst = append(dst, '*')
			dst = append(dst, v...)
		}
	}
	return dst
}

// keyScratch recycles the render buffer CompareKey works in.
var keyScratch = sync.Pool{New: func() any { b := make([]byte, 0, 128); return &b }}

// CompareKey orders e and o exactly as strings.Compare(e.Key(), o.Key())
// would, without materializing the key strings — the comparison the bound
// atom-set operations run in their inner loops.
func (e Expr) CompareKey(o Expr) int {
	bp := keyScratch.Get().(*[]byte)
	buf := e.appendKey((*bp)[:0])
	n := len(buf)
	buf = o.appendKey(buf)
	c := bytes.Compare(buf[:n], buf[n:])
	*bp = buf[:0]
	keyScratch.Put(bp)
	return c
}

// Vars returns the sorted set of distinct variables appearing in e.
func (e Expr) Vars() []string {
	set := map[string]bool{}
	for _, t := range e.terms {
		for _, v := range t.vars {
			set[v] = true
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Uses reports whether variable name appears in e.
func (e Expr) Uses(name string) bool {
	for _, t := range e.terms {
		for _, v := range t.vars {
			if v == name {
				return true
			}
		}
	}
	return false
}

// Degree returns the total degree of the polynomial (0 for constants).
func (e Expr) Degree() int {
	d := 0
	for _, t := range e.terms {
		if len(t.vars) > d {
			d = len(t.vars)
		}
	}
	return d
}

// IsAffine reports whether every monomial has degree at most 1.
func (e Expr) IsAffine() bool { return e.Degree() <= 1 }

// AsVarPlusConst decomposes e as v + c for a single variable v with unit
// coefficient. The variable is "" when e is the bare constant c. Returns
// ok=false for any other shape (this is exactly the representation the
// Section VII client supports for message expressions and bounds).
func (e Expr) AsVarPlusConst() (v string, c int64, ok bool) {
	switch len(e.terms) {
	case 0:
		return "", 0, true
	case 1:
		t := e.terms[0]
		if len(t.vars) == 0 {
			return "", t.coef, true
		}
		if len(t.vars) == 1 && t.coef == 1 {
			return t.vars[0], 0, true
		}
	case 2:
		var con, lin *term
		for i := range e.terms {
			switch len(e.terms[i].vars) {
			case 0:
				con = &e.terms[i]
			case 1:
				lin = &e.terms[i]
			}
		}
		if con != nil && lin != nil && lin.coef == 1 {
			return lin.vars[0], con.coef, true
		}
	}
	return "", 0, false
}

// Coeff returns the coefficient of the degree-1 monomial in name.
func (e Expr) Coeff(name string) int64 {
	for _, t := range e.terms {
		if len(t.vars) == 1 && t.vars[0] == name {
			return t.coef
		}
	}
	return 0
}

// ConstTerm returns the constant (degree-0) part of e.
func (e Expr) ConstTerm() int64 {
	for _, t := range e.terms {
		if len(t.vars) == 0 {
			return t.coef
		}
	}
	return 0
}

// Subst returns e with every occurrence of variable name replaced by repl.
func Subst(e Expr, name string, repl Expr) Expr {
	if !e.Uses(name) {
		return e
	}
	out := Zero
	for _, t := range e.terms {
		mono := Const(t.coef)
		for _, v := range t.vars {
			if v == name {
				mono = Mul(mono, repl)
			} else {
				mono = Mul(mono, Var(v))
			}
		}
		out = Add(out, mono)
	}
	return out
}

// SubstAll applies all substitutions in env simultaneously (each variable is
// replaced once; replacements are not re-substituted).
func SubstAll(e Expr, env map[string]Expr) Expr {
	hit := false
	for _, t := range e.terms {
		for _, v := range t.vars {
			if _, ok := env[v]; ok {
				hit = true
				break
			}
		}
		if hit {
			break
		}
	}
	if !hit {
		return e
	}
	out := Zero
	for _, t := range e.terms {
		mono := Const(t.coef)
		for _, v := range t.vars {
			if r, ok := env[v]; ok {
				mono = Mul(mono, r)
			} else {
				mono = Mul(mono, Var(v))
			}
		}
		out = Add(out, mono)
	}
	return out
}

// Div attempts the exact division a / b where b is a single term (for
// example 2*nrows or a constant). It succeeds when every monomial of a is
// divisible by b: coefficients divide exactly and b's variables (with
// multiplicity) appear in each monomial.
func Div(a, b Expr) (Expr, bool) {
	if len(b.terms) != 1 || b.terms[0].coef == 0 {
		return Zero, false
	}
	bt := b.terms[0]
	var out []term
	for _, t := range a.terms {
		if t.coef%bt.coef != 0 {
			return Zero, false
		}
		vars := append([]string(nil), t.vars...)
		for _, bv := range bt.vars {
			idx := -1
			for i, v := range vars {
				if v == bv {
					idx = i
					break
				}
			}
			if idx < 0 {
				return Zero, false
			}
			vars = append(vars[:idx], vars[idx+1:]...)
		}
		out = append(out, term{coef: t.coef / bt.coef, vars: vars})
	}
	return normalize(out), true
}

// Term is the exported view of a monomial: Coef * product(Vars).
// Vars is sorted and may repeat for higher powers.
type Term struct {
	Coef int64
	Vars []string
}

// Terms returns the monomials of e in canonical order. The returned slices
// must not be mutated.
func (e Expr) Terms() []Term {
	out := make([]Term, len(e.terms))
	for i, t := range e.terms {
		out[i] = Term{Coef: t.coef, Vars: t.vars}
	}
	return out
}

// Eval evaluates e under a concrete assignment. Missing variables default
// to 0.
func (e Expr) Eval(env map[string]int64) int64 {
	var total int64
	for _, t := range e.terms {
		v := t.coef
		for _, name := range t.vars {
			v *= env[name]
		}
		total += v
	}
	return total
}

// String renders the polynomial deterministically, e.g. "2*nrows + x - 3".
func (e Expr) String() string {
	if len(e.terms) == 0 {
		return "0"
	}
	// Render variables before the constant term for readability. The normal
	// form is sorted by monomial key, which places the (single) constant
	// term first, so rotating it to the back reproduces the display order
	// without copying and re-sorting.
	ordered := e.terms
	if len(ordered[0].vars) == 0 && len(ordered) > 1 {
		rot := make([]term, 0, len(ordered))
		rot = append(rot, ordered[1:]...)
		ordered = append(rot, ordered[0])
	}
	var b strings.Builder
	for i, t := range ordered {
		c := t.coef
		if i == 0 {
			if c < 0 {
				b.WriteString("-")
				c = -c
			}
		} else {
			if c < 0 {
				b.WriteString(" - ")
				c = -c
			} else {
				b.WriteString(" + ")
			}
		}
		if len(t.vars) == 0 {
			fmt.Fprintf(&b, "%d", c)
			continue
		}
		if c != 1 {
			fmt.Fprintf(&b, "%d*", c)
		}
		b.WriteString(strings.Join(t.vars, "*"))
	}
	return b.String()
}

// Cmp compares two constant differences: it returns the constant value of
// a-b if that difference is constant.
func Cmp(a, b Expr) (int64, bool) {
	return Sub(a, b).IsConst()
}
