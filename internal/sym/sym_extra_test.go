package sym

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCompareKeyMatchesStringCompare pins CompareKey to the exact order of
// strings.Compare over rendered keys, across randomized polynomials
// (including negative coefficients, multi-variable monomials and zero).
func TestCompareKeyMatchesStringCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := []string{"i", "j", "np", "wp0", "ps12", "$0", "x"}
	randExpr := func() Expr {
		e := Expr{}
		for n := rng.Intn(4); n >= 0; n-- {
			tm := Const(int64(rng.Intn(41) - 20))
			for v := rng.Intn(3); v > 0; v-- {
				tm = Mul(tm, Var(names[rng.Intn(len(names))]))
			}
			e = Add(e, tm)
		}
		return e
	}
	for iter := 0; iter < 5000; iter++ {
		a, b := randExpr(), randExpr()
		want := strings.Compare(a.Key(), b.Key())
		if got := a.CompareKey(b); got != want {
			t.Fatalf("CompareKey(%q, %q) = %d, want %d", a.Key(), b.Key(), got, want)
		}
		if a.CompareKey(a) != 0 || b.CompareKey(b) != 0 {
			t.Fatalf("CompareKey not reflexive for %q / %q", a.Key(), b.Key())
		}
	}
}

// TestVarCacheImmutability guards the interned Var exprs: operations on a
// cached Var must never mutate the shared value.
func TestVarCacheImmutability(t *testing.T) {
	a := Var("cachedvar")
	_ = AddConst(a, 5)
	_ = Neg(a)
	_ = Scale(a, 3)
	_ = Subst(a, "cachedvar", Const(9))
	b := Var("cachedvar")
	if b.Key() != "1*cachedvar" {
		t.Fatalf("cached Var mutated: key %q", b.Key())
	}
	if !Equal(a, b) {
		t.Fatalf("cached Var not equal to itself after ops")
	}
}
