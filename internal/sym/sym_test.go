package sym

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstArithmetic(t *testing.T) {
	a := Const(3)
	b := Const(4)
	if got, _ := Add(a, b).IsConst(); got != 7 {
		t.Errorf("3+4 = %d", got)
	}
	if got, _ := Mul(a, b).IsConst(); got != 12 {
		t.Errorf("3*4 = %d", got)
	}
	if got, _ := Sub(a, b).IsConst(); got != -1 {
		t.Errorf("3-4 = %d", got)
	}
	if !Zero.IsZero() {
		t.Error("Zero not zero")
	}
	if v, ok := Zero.IsConst(); !ok || v != 0 {
		t.Error("Zero not const 0")
	}
}

func TestNormalization(t *testing.T) {
	// x + y - x == y
	e := Sub(Add(Var("x"), Var("y")), Var("x"))
	if !Equal(e, Var("y")) {
		t.Errorf("x+y-x = %v", e)
	}
	// 2x - x - x == 0
	e = Sub(Sub(Scale(Var("x"), 2), Var("x")), Var("x"))
	if !e.IsZero() {
		t.Errorf("2x-x-x = %v", e)
	}
}

func TestMulCommutesAndDistributes(t *testing.T) {
	x, y, z := Var("x"), Var("y"), Var("z")
	if !Equal(Mul(x, y), Mul(y, x)) {
		t.Error("xy != yx")
	}
	if !Equal(Mul(x, Add(y, z)), Add(Mul(x, y), Mul(x, z))) {
		t.Error("x(y+z) != xy+xz")
	}
	// (x+1)*(x-1) = x^2 - 1
	sq := Mul(Add(x, One), Sub(x, One))
	want := Sub(Mul(x, x), One)
	if !Equal(sq, want) {
		t.Errorf("(x+1)(x-1) = %v, want %v", sq, want)
	}
}

func TestAsVarPlusConst(t *testing.T) {
	cases := []struct {
		e  Expr
		v  string
		c  int64
		ok bool
	}{
		{Const(5), "", 5, true},
		{Zero, "", 0, true},
		{Var("i"), "i", 0, true},
		{VarPlus("i", 3), "i", 3, true},
		{VarPlus("i", -2), "i", -2, true},
		{Scale(Var("i"), 2), "", 0, false},
		{Add(Var("i"), Var("j")), "", 0, false},
		{Mul(Var("i"), Var("i")), "", 0, false},
	}
	for _, c := range cases {
		v, k, ok := c.e.AsVarPlusConst()
		if ok != c.ok || (ok && (v != c.v || k != c.c)) {
			t.Errorf("AsVarPlusConst(%v) = %q,%d,%v; want %q,%d,%v", c.e, v, k, ok, c.v, c.c, c.ok)
		}
	}
}

func TestSubst(t *testing.T) {
	// np -> nrows*ncols in np - nrows
	e := Sub(Var("np"), Var("nrows"))
	got := Subst(e, "np", Mul(Var("nrows"), Var("ncols")))
	want := Sub(Mul(Var("ncols"), Var("nrows")), Var("nrows"))
	if !Equal(got, want) {
		t.Errorf("subst = %v, want %v", got, want)
	}
	// Substituting in a squared occurrence: x*x with x -> y+1 = y^2+2y+1
	sq := Mul(Var("x"), Var("x"))
	got = Subst(sq, "x", Add(Var("y"), One))
	want = Add(Add(Mul(Var("y"), Var("y")), Scale(Var("y"), 2)), One)
	if !Equal(got, want) {
		t.Errorf("subst sq = %v, want %v", got, want)
	}
}

func TestSubstAllSimultaneous(t *testing.T) {
	// {x->y, y->x} applied to x - y swaps, not chains.
	e := Sub(Var("x"), Var("y"))
	got := SubstAll(e, map[string]Expr{"x": Var("y"), "y": Var("x")})
	want := Sub(Var("y"), Var("x"))
	if !Equal(got, want) {
		t.Errorf("SubstAll = %v, want %v", got, want)
	}
}

func TestDiv(t *testing.T) {
	nr := Var("nrows")
	// (nrows^2 + 2*nrows) / nrows = nrows + 2
	e := Add(Mul(nr, nr), Scale(nr, 2))
	q, ok := Div(e, nr)
	if !ok || !Equal(q, Add(nr, Const(2))) {
		t.Errorf("div = %v, %v", q, ok)
	}
	// (4x) / 2 = 2x
	q, ok = Div(Scale(Var("x"), 4), Const(2))
	if !ok || !Equal(q, Scale(Var("x"), 2)) {
		t.Errorf("4x/2 = %v, %v", q, ok)
	}
	// (2*nrows*x)/(2*nrows) = x
	q, ok = Div(Mul(Scale(nr, 2), Var("x")), Scale(nr, 2))
	if !ok || !Equal(q, Var("x")) {
		t.Errorf("2nr*x/2nr = %v, %v", q, ok)
	}
	// x+1 not divisible by x
	if _, ok := Div(Add(Var("x"), One), Var("x")); ok {
		t.Error("x+1 / x should fail")
	}
	// 3x not divisible by 2
	if _, ok := Div(Scale(Var("x"), 3), Const(2)); ok {
		t.Error("3x / 2 should fail")
	}
	// division by zero or non-monomial fails
	if _, ok := Div(Var("x"), Zero); ok {
		t.Error("x / 0 should fail")
	}
	if _, ok := Div(Var("x"), Add(Var("y"), One)); ok {
		t.Error("x / (y+1) should fail")
	}
}

func TestVarsDegreeUses(t *testing.T) {
	e := Add(Mul(Var("b"), Var("a")), Var("c"))
	vars := e.Vars()
	if len(vars) != 3 || vars[0] != "a" || vars[2] != "c" {
		t.Errorf("Vars = %v", vars)
	}
	if e.Degree() != 2 {
		t.Errorf("Degree = %d", e.Degree())
	}
	if e.IsAffine() {
		t.Error("a*b+c reported affine")
	}
	if !VarPlus("x", 1).IsAffine() {
		t.Error("x+1 not affine")
	}
	if !e.Uses("b") || e.Uses("zz") {
		t.Error("Uses wrong")
	}
}

func TestCoeffAndConstTerm(t *testing.T) {
	e := Add(Scale(Var("x"), 3), Const(-7))
	if e.Coeff("x") != 3 || e.Coeff("y") != 0 || e.ConstTerm() != -7 {
		t.Errorf("coeff/const wrong for %v", e)
	}
}

func TestString(t *testing.T) {
	cases := map[string]Expr{
		"0":           Zero,
		"5":           Const(5),
		"-3":          Const(-3),
		"x":           Var("x"),
		"x + 1":       VarPlus("x", 1),
		"x - 1":       VarPlus("x", -1),
		"2*x":         Scale(Var("x"), 2),
		"-x":          Neg(Var("x")),
		"nrows*nrows": Mul(Var("nrows"), Var("nrows")),
		"x*y + 2":     Add(Mul(Var("x"), Var("y")), Const(2)),
	}
	for want, e := range cases {
		if got := e.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", e, got, want)
		}
	}
}

func TestCmp(t *testing.T) {
	if d, ok := Cmp(VarPlus("x", 5), VarPlus("x", 2)); !ok || d != 3 {
		t.Errorf("Cmp = %d,%v", d, ok)
	}
	if _, ok := Cmp(Var("x"), Var("y")); ok {
		t.Error("Cmp of unrelated vars should fail")
	}
}

// randomExpr builds a random polynomial for property tests.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return Const(int64(r.Intn(11) - 5))
		default:
			return Var(string(rune('a' + r.Intn(4))))
		}
	}
	a := randomExpr(r, depth-1)
	b := randomExpr(r, depth-1)
	switch r.Intn(3) {
	case 0:
		return Add(a, b)
	case 1:
		return Sub(a, b)
	default:
		return Mul(a, b)
	}
}

func randomEnv(r *rand.Rand) map[string]int64 {
	env := map[string]int64{}
	for _, v := range []string{"a", "b", "c", "d"} {
		env[v] = int64(r.Intn(21) - 10)
	}
	return env
}

func TestQuickEvalHomomorphism(t *testing.T) {
	// Eval commutes with Add/Sub/Mul: the normal form preserves meaning.
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomExpr(r, 3)
		b := randomExpr(r, 3)
		env := randomEnv(r)
		return Add(a, b).Eval(env) == a.Eval(env)+b.Eval(env) &&
			Sub(a, b).Eval(env) == a.Eval(env)-b.Eval(env) &&
			Mul(a, b).Eval(env) == a.Eval(env)*b.Eval(env) &&
			Neg(a).Eval(env) == -a.Eval(env)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubstSemantics(t *testing.T) {
	// Eval(Subst(e, x, r), env) == Eval(e, env[x -> Eval(r, env)])
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := randomExpr(rng, 3)
		repl := randomExpr(rng, 2)
		env := randomEnv(rng)
		substituted := Subst(e, "a", repl).Eval(env)
		env2 := map[string]int64{}
		for k, v := range env {
			env2[k] = v
		}
		env2["a"] = repl.Eval(env)
		return substituted == e.Eval(env2)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickDivExact(t *testing.T) {
	// If Div succeeds, quotient * divisor == dividend.
	cfg := &quick.Config{MaxCount: 300}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := randomExpr(r, 2)
		divisors := []Expr{Const(int64(r.Intn(4) + 1)), Var("a"), Mul(Const(2), Var("b"))}
		d := divisors[r.Intn(len(divisors))]
		product := Mul(q, d)
		got, ok := Div(product, d)
		if !ok {
			return false
		}
		return Equal(got, q)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestKeyDeterministic(t *testing.T) {
	a := Add(Add(Var("x"), Var("y")), Const(1))
	b := Add(Const(1), Add(Var("y"), Var("x")))
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
}
