// Package repro's benchmark harness regenerates the paper's evaluation as
// testing.B benchmarks: one benchmark per figure/table (see DESIGN.md's
// per-experiment index) plus ablations for the design choices called out in
// Section IX. Run with:
//
//	go test -bench=. -benchmem
//
// The human-readable paper-vs-measured tables are printed by cmd/psdf-bench.
package repro

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bench"
	"repro/internal/cg"
	"repro/internal/clients/cartesian"
	"repro/internal/core"
	"repro/internal/hsm"
	"repro/internal/modelcheck"
	"repro/internal/mpicfg"
	"repro/internal/sim"
	"repro/internal/sym"
)

// analyzeWorkload runs the full analysis once; the benchmark fails on any
// incomplete analysis so timing numbers always describe successful runs.
func analyzeWorkload(b *testing.B, w *bench.Workload, backend cg.Backend) *core.Result {
	b.Helper()
	_, g := w.Parse()
	m := cartesian.New(core.ScanInvariants(g))
	res, err := core.Analyze(g, core.Options{Matcher: m, CGOpts: cg.Options{Backend: backend}})
	if err != nil {
		b.Fatal(err)
	}
	if !res.Clean() {
		b.Fatalf("%s: analysis incomplete: %v", w.Name, res.TopReasons())
	}
	return res
}

func benchAnalysis(b *testing.B, w *bench.Workload) {
	b.Helper()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res = analyzeWorkload(b, w, cg.ArrayBackend)
	}
	b.ReportMetric(float64(res.Configs), "pcfg-nodes")
	b.ReportMetric(float64(len(res.Matches)), "topology-edges")
}

// E1 / Fig 2: constant propagation across an exchange.
func BenchmarkFig2Exchange(b *testing.B) { benchAnalysis(b, bench.Fig2Exchange()) }

// E2 / Figs 1&5: mdcask exchange-with-root.
func BenchmarkFig5ExchangeRoot(b *testing.B) { benchAnalysis(b, bench.Fig5ExchangeRoot()) }

// E3 / Fig 6: NAS-CG transpose, both grid shapes.
func BenchmarkFig6TransposeSquare(b *testing.B) { benchAnalysis(b, bench.TransposeSquare()) }
func BenchmarkFig6TransposeRect(b *testing.B)   { benchAnalysis(b, bench.TransposeRect()) }

// E4 / Figs 7&8: 1-D nearest-neighbor shift.
func BenchmarkFig7Shift(b *testing.B) { benchAnalysis(b, bench.Fig7Shift()) }

// E11 / Section VIII-C: the full bidirectional d=1 stencil (3 roles).
func BenchmarkStencil1D(b *testing.B) { benchAnalysis(b, bench.Stencil1D()) }

// Parallel analysis driver: the full workload suite through core.AnalyzeAll,
// sequentially and on the bounded worker pool (one worker per CPU).
func BenchmarkAnalyzeAllWorkloads(b *testing.B) {
	ws := bench.All()
	mkJobs := func() []core.Job {
		jobs := make([]core.Job, len(ws))
		for i, w := range ws {
			_, g := w.Parse()
			jobs[i] = core.Job{
				Name: w.Name,
				G:    g,
				Opts: core.Options{Matcher: cartesian.New(core.ScanInvariants(g))},
			}
		}
		return jobs
	}
	for _, cfg := range []struct {
		name        string
		parallelism int
	}{{"serial", 1}, {"parallel", 0}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				jobs := mkJobs()
				b.StartTimer()
				for _, jr := range core.AnalyzeAll(jobs, cfg.parallelism) {
					if jr.Err != nil {
						b.Fatalf("%s: %v", jr.Name, jr.Err)
					}
				}
			}
		})
	}
}

// Parallel intra-analysis worklist: one analysis driven by N worker
// goroutines over the sharded configuration table. The speedup is bounded
// by the pCFG frontier width (stencil1d averages ~4 independent
// configurations, fig7_shift ~2) and of course by GOMAXPROCS; workers-1
// uses the plain sequential loop and must match BenchmarkStencil1D.
func BenchmarkEngineWorkers(b *testing.B) {
	for _, w := range []*bench.Workload{bench.Fig7Shift(), bench.Stencil1D()} {
		w := w
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers-%d", w.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					_, g := w.Parse()
					m := cartesian.New(core.ScanInvariants(g))
					res, err := core.Analyze(g, core.Options{Matcher: m, Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Clean() {
						b.Fatalf("%s: analysis incomplete: %v", w.Name, res.TopReasons())
					}
				}
			})
		}
	}
}

// E5 / Table I: the HSM operation suite (mod, div, adjacency, interleave,
// swap, and the symbolic square-grid derivation).
func BenchmarkTableIHSMOps(b *testing.B) {
	nr := sym.Var("nrows")
	ctx := hsm.NewCtx().WithLowerBound("nrows", 1)
	id := hsm.IDRange(sym.Zero, sym.Mul(nr, nr))
	h1 := hsm.Run(sym.Const(12), sym.Const(15), sym.Const(2))
	h2 := hsm.Run(sym.Const(20), sym.Const(6), sym.Const(5))
	p := hsm.NewProver(ctx)
	a := hsm.Node(hsm.Run(sym.Const(2), sym.Const(3), sym.Const(4)), sym.Const(2), sym.Const(2))
	flat := hsm.Run(sym.Const(2), sym.Const(6), sym.Const(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Mod(h1, sym.Const(6)); err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.Div(h2, sym.Const(10)); err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.Mod(id, nr); err != nil {
			b.Fatal(err)
		}
		if _, err := ctx.Div(id, nr); err != nil {
			b.Fatal(err)
		}
		if !p.SetEqual(a, flat) {
			b.Fatal("interleave proof failed")
		}
	}
}

// E6 / Section IX: the fan-out broadcast profile; reports the dataflow
// state-maintenance share and closure call counts as metrics.
func BenchmarkSectionIXProfile(b *testing.B) {
	w := bench.Fanout()
	_, g := w.Parse()
	var stats cg.Stats
	var res *core.Result
	for i := 0; i < b.N; i++ {
		m := cartesian.New(core.ScanInvariants(g))
		var err error
		res, err = core.Analyze(g, core.Options{Matcher: m, CGOpts: cg.Options{Stats: &stats}})
		if err != nil || !res.Clean() {
			b.Fatalf("%v %v", err, res.TopReasons())
		}
	}
	b.ReportMetric(float64(stats.IncrClosures())/float64(b.N), "incr-closures/op")
	b.ReportMetric(stats.AvgIncrVars(), "avg-closure-vars")
	b.ReportMetric(float64(stats.Joins())/float64(b.N), "joins/op")
}

// E7 / Section IX storage ablation: identical closure workload on the
// array-backed and map-backed constraint graphs.
func BenchmarkClosureBackends(b *testing.B) {
	mkWork := func() [][3]int64 {
		r := rand.New(rand.NewSource(42))
		var work [][3]int64
		for i := 0; i < 400; i++ {
			work = append(work, [3]int64{int64(r.Intn(60)), int64(r.Intn(60)), int64(r.Intn(20))})
		}
		return work
	}
	for _, backend := range []cg.Backend{cg.ArrayBackend, cg.MapBackend} {
		backend := backend
		b.Run(backend.String(), func(b *testing.B) {
			work := mkWork()
			for i := 0; i < b.N; i++ {
				g := cg.New(cg.Options{Backend: backend})
				for _, w := range work {
					g.AddLE(fmt.Sprintf("v%d", w[0]), fmt.Sprintf("v%d", w[1]), w[2])
				}
			}
		})
	}
}

// Ablation: O(n^2) incremental closure maintenance vs O(n^3) full
// re-closure after every constraint (the paper's two transitive-closure
// variants).
func BenchmarkIncrementalVsFullClosure(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	var work [][3]int64
	for i := 0; i < 120; i++ {
		work = append(work, [3]int64{int64(r.Intn(40)), int64(r.Intn(40)), int64(r.Intn(15) + 1)})
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := cg.NewDefault()
			for _, w := range work {
				g.AddLE(fmt.Sprintf("v%d", w[0]), fmt.Sprintf("v%d", w[1]), w[2])
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := cg.NewDefault()
			for _, w := range work {
				g.AddLE(fmt.Sprintf("v%d", w[0]), fmt.Sprintf("v%d", w[1]), w[2])
				g.FullClose()
			}
		}
	})
}

// E8: the explicit-state baseline's cost grows with np while the pCFG
// analysis is np-independent.
func BenchmarkScalingVsNp(b *testing.B) {
	w := bench.Fig5ExchangeRoot()
	_, g := w.Parse()
	b.Run("pcfg-any-np", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			analyzeWorkload(b, w, cg.ArrayBackend)
		}
	})
	for _, np := range []int{4, 16, 64, 256} {
		np := np
		b.Run(fmt.Sprintf("modelcheck-np%d", np), func(b *testing.B) {
			var states int
			for i := 0; i < b.N; i++ {
				mc, err := modelcheck.Check(g, np, nil)
				if err != nil || mc.Deadlocked {
					b.Fatal(err)
				}
				states = mc.States
			}
			b.ReportMetric(float64(states), "states")
		})
	}
}

// E9: MPI-CFG baseline precision comparison; reports edge counts.
func BenchmarkPrecisionVsMPICFG(b *testing.B) {
	var pcfgEdges, baseEdges int
	for i := 0; i < b.N; i++ {
		pcfgEdges, baseEdges = 0, 0
		for _, w := range bench.All() {
			res := analyzeWorkload(b, w, cg.ArrayBackend)
			seen := map[[2]int]bool{}
			for _, m := range res.Matches {
				seen[[2]int{m.SendNode, m.RecvNode}] = true
			}
			pcfgEdges += len(seen)
			_, g := w.Parse()
			baseEdges += len(mpicfg.Analyze(g).Edges)
		}
	}
	b.ReportMetric(float64(pcfgEdges), "pcfg-edges")
	b.ReportMetric(float64(baseEdges), "mpicfg-edges")
}

// E10: error-detection workloads (the analysis correctly reaches ⊤ or a
// type-mismatch finding; timing covers the give-up path).
func BenchmarkVerify(b *testing.B) {
	workloads := []*bench.Workload{bench.LeakyBroadcast(), bench.TypeMismatch()}
	for i := 0; i < b.N; i++ {
		for _, w := range workloads {
			_, g := w.Parse()
			m := cartesian.New(core.ScanInvariants(g))
			if _, err := core.Analyze(g, core.Options{Matcher: m}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// E11: concrete d-dimensional stencil execution.
func BenchmarkStencilDims(b *testing.B) {
	for d := 1; d <= 3; d++ {
		d := d
		b.Run(fmt.Sprintf("d%d", d), func(b *testing.B) {
			w := bench.StencilDim(d, 3)
			_, g := w.Parse()
			var msgs int
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(g, w.NPFor(0), sim.Options{})
				if err != nil || res.Deadlocked {
					b.Fatal(err)
				}
				msgs = len(res.Events)
			}
			b.ReportMetric(float64(msgs), "messages")
		})
	}
}

// E12 / Section X ablation: the same send-first program analyzed with
// blocking sends (pipeline widening) vs the aggregated non-blocking
// extension.
func BenchmarkAggregationAblation(b *testing.B) {
	w := bench.SendFirstShift()
	_, g := w.Parse()
	for _, nb := range []bool{false, true} {
		nb := nb
		name := "blocking"
		if nb {
			name = "aggregated"
		}
		b.Run(name, func(b *testing.B) {
			var res *core.Result
			for i := 0; i < b.N; i++ {
				m := cartesian.New(core.ScanInvariants(g))
				var err error
				res, err = core.Analyze(g, core.Options{Matcher: m, NonBlockingSends: nb})
				if err != nil || !res.Clean() {
					b.Fatalf("%v %v", err, res.TopReasons())
				}
			}
			b.ReportMetric(float64(res.Configs), "pcfg-nodes")
		})
	}
}

// Baseline infrastructure benchmarks: the simulator itself.
func BenchmarkSimulator(b *testing.B) {
	w := bench.Fig7Shift()
	_, g := w.Parse()
	for _, np := range []int{8, 64, 512} {
		np := np
		b.Run(fmt.Sprintf("np%d", np), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(g, np, sim.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: HSM prover search budget vs proof success on the rectangular
// transpose surjection (the hardest routine proof in the suite).
func BenchmarkProverDepth(b *testing.B) {
	nr := sym.Var("nrows")
	ctx := hsm.NewCtx().
		WithInvariant("np", sym.Scale(sym.Mul(nr, nr), 2)).
		WithLowerBound("nrows", 1)
	// The rectangular send HSM: [[[0:2,1]:nrows,2*nrows]:nrows,2].
	h := hsm.Node(
		hsm.Node(hsm.Run(sym.Zero, sym.Const(2), sym.One), nr, sym.Scale(nr, 2)),
		nr, sym.Const(2))
	target := hsm.IDRange(sym.Zero, sym.Scale(sym.Mul(nr, nr), 2))
	for _, depth := range []int{2, 4, 8} {
		depth := depth
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			ok := false
			for i := 0; i < b.N; i++ {
				p := hsm.NewProver(ctx)
				p.MaxDepth = depth
				ok = p.SetEqual(h, target)
			}
			if ok {
				b.ReportMetric(1, "proved")
			} else {
				b.ReportMetric(0, "proved")
			}
		})
	}
}

// Sanity: the CFG builder on a large generated program (frontend cost).
func BenchmarkFrontend(b *testing.B) {
	w := bench.StencilDim(3, 4)
	for i := 0; i < b.N; i++ {
		_, g := w.Parse()
		if len(g.Nodes) == 0 {
			b.Fatal("empty cfg")
		}
	}
}
